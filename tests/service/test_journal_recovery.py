"""Kill-and-resume recovery through the service write-ahead journal.

The acceptance bar: a ``repro serve`` run killed mid-stream and rerun
against its journal must reproduce the uninterrupted run's
:class:`ServiceReport` digest *byte for byte*.  On the simulator that
works by validated replay -- the resume re-executes the deterministic
trace and cross-checks every completion against the journaled prefix --
so these tests also pin the failure modes: foreign journals rejected by
fingerprint, tampered records surfacing as :class:`JournalDivergence`,
torn final lines repaired instead of poisoning the file.
"""

import json
import os

import pytest

from repro.recovery import (
    JournalDivergence,
    JournalError,
    ServiceJournal,
    ServiceKilled,
    read_journal,
)
from repro.service import ServiceConfig, default_tenants, run_service
from repro.testing import assert_no_output_leaks


def make_config(**overrides) -> ServiceConfig:
    base = dict(
        tenants=default_tenants(2, rate=1.0 / 300.0),
        jobs_per_tenant=4,
        seed=3,
        capacity=2,
    )
    base.update(overrides)
    return ServiceConfig(**base)


@pytest.fixture(scope="module")
def reference_report():
    """The uninterrupted run every resumed run must match."""
    return run_service(make_config())


class TestKillAndResume:
    def test_kill_raises_after_n_journaled_jobs(self, tmp_path):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled) as exc:
            run_service(make_config(journal_path=journal, kill_after_jobs=3))
        assert exc.value.jobs_completed == 3
        state = read_journal(journal)
        assert len(state.jobs) == 3
        assert len(state.tuning) == 3
        assert len(state.checkpoints) == 3

    def test_resume_reproduces_digest_byte_for_byte(
        self, tmp_path, reference_report
    ):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=3))
        resumed = run_service(make_config(journal_path=journal))
        assert resumed.digest() == reference_report.digest()
        assert resumed.render() == reference_report.render()
        # The resumed run appended the remaining jobs to the journal.
        assert len(read_journal(journal).jobs) == resumed.jobs_completed
        assert_no_output_leaks(str(tmp_path))

    def test_journaled_run_digest_matches_unjournaled(
        self, tmp_path, reference_report
    ):
        # Journaling alone (no kill) must not perturb the report.
        journal = str(tmp_path / "svc.journal")
        report = run_service(make_config(journal_path=journal))
        assert report.digest() == reference_report.digest()

    def test_double_kill_then_resume(self, tmp_path, reference_report):
        # Crash, resume, crash again further in, resume to completion.
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=2))
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=2))
        assert len(read_journal(journal).jobs) == 4
        resumed = run_service(make_config(journal_path=journal))
        assert resumed.digest() == reference_report.digest()

    def test_torn_final_line_is_repaired(self, tmp_path, reference_report):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=3))
        with open(journal, "rb") as fh:
            data = fh.read()
        # The crash ate the tail of the last record mid-write.
        with open(journal, "wb") as fh:
            fh.write(data[:-20])
        resumed = run_service(make_config(journal_path=journal))
        assert resumed.digest() == reference_report.digest()
        # The repair rewrote a clean file: every line parses now.
        with open(journal) as fh:
            for line in fh.read().splitlines():
                json.loads(line)
        assert_no_output_leaks(str(tmp_path))


class TestJournalSafety:
    def test_foreign_journal_rejected_by_fingerprint(self, tmp_path):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=2))
        with pytest.raises(JournalError, match="different service config"):
            run_service(
                make_config(seed=4, journal_path=journal)
            )

    def test_tampered_record_surfaces_as_divergence(self, tmp_path):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=2))
        with open(journal) as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record["kind"] == "job":
                record["completion"] += 1.0
                lines[i] = json.dumps(record, separators=(",", ":"))
                break
        with open(journal, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalDivergence):
            run_service(make_config(journal_path=journal))

    def test_interior_corruption_raises(self, tmp_path):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=2))
        with open(journal) as fh:
            lines = fh.read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn *interior* line
        with open(journal, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_journal(journal)

    def test_not_a_journal_rejected(self, tmp_path):
        path = str(tmp_path / "noise.jsonl")
        with open(path, "w") as fh:
            fh.write('{"kind":"job"}\n')
        with pytest.raises(JournalError, match="missing header"):
            read_journal(path)

    def test_kill_without_journal_rejected(self):
        with pytest.raises(ValueError, match="requires journal_path"):
            make_config(kill_after_jobs=1)

    def test_fingerprint_ignores_journal_knobs(self):
        plain = make_config()
        armed = make_config(journal_path="/tmp/x", kill_after_jobs=2)
        assert plain.fingerprint() == armed.fingerprint()
        assert plain.fingerprint() != make_config(seed=4).fingerprint()


class TestJournalState:
    def test_completed_keys_and_next_index(self, tmp_path):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=3))
        state = read_journal(journal)
        keys = state.completed_keys()
        assert len(keys) == 3
        for tenant, index in keys:
            assert tenant.startswith("tenant-")
            assert index >= 0
        for tenant in ("tenant-a", "tenant-b"):
            nxt = state.next_arrival_index(tenant)
            assert (tenant, nxt) not in keys

    def test_checkpoints_carry_incumbents(self, tmp_path):
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=3))
        state = read_journal(journal)
        assert state.checkpoints
        for searches in state.checkpoints.values():
            for ckpt in searches.values():
                assert {"incumbent_point", "bounds_lo", "wave_of_best"} <= set(
                    ckpt
                )
        # Knowledge snapshots restore into a usable KB.
        assert state.knowledge
        from repro.core.knowledge_base import TuningKnowledgeBase

        for entries in state.knowledge.values():
            kb = TuningKnowledgeBase.from_json(json.dumps(entries))
            assert len(kb) >= 1

    def test_open_is_exclusive_and_reopenable(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal = ServiceJournal(path)
        journal.open("f" * 64)
        with pytest.raises(JournalError, match="already open"):
            journal.open("f" * 64)
        journal.close()
        state = ServiceJournal(path).open("f" * 64)
        assert state.fingerprint == "f" * 64
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
