"""End-to-end service-loop tests: small runs, telemetry, preemption,
the local-backend smoke, and the acceptance-scale warm-vs-cold gate.
"""

import pytest

from repro.backends.sim import SimBackend
from repro.service import (
    ServiceConfig,
    TenantSpec,
    default_tenants,
    percentile,
    run_service,
    run_service_local,
)

#: Warm run, 3 default tenants x 70 jobs (210-job Poisson/diurnal
#: stream), seed 1 -- exactly what `repro serve --backend sim` serves.
SERVICE_DIGEST_3X70_SEED1 = (
    "161b01c36c4865849a77b827d76da7740a54670fa1acf168fbfaea3066e49571"
)


class TestSmallRun:
    @pytest.fixture(scope="class")
    def report(self):
        return run_service(
            ServiceConfig(tenants=default_tenants(3), jobs_per_tenant=4, seed=1)
        )

    def test_all_jobs_complete(self, report):
        assert report.jobs_completed == 3 * 4
        assert sum(t.jobs for t in report.tenants) == 12

    def test_steady_state_metrics_sane(self, report):
        assert report.makespan > 0
        assert report.throughput_jobs_per_sec > 0
        assert 0 < report.p50_latency <= report.p95_latency
        assert 0.0 <= report.slo_attainment <= 1.0
        for t in report.tenants:
            assert t.p50_latency <= t.p95_latency
            assert t.mean_queue_delay >= 0

    def test_every_tuned_job_has_a_session_record(self, report):
        assert len(report.tuning) == report.jobs_completed
        assert report.warm_sessions + report.cold_sessions == len(report.tuning)

    def test_untuned_run_has_no_sessions(self):
        report = run_service(
            ServiceConfig(
                tenants=default_tenants(2),
                jobs_per_tenant=2,
                seed=1,
                tuned=False,
            )
        )
        assert report.tuning == ()
        assert report.jobs_completed == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(tenants=())
        with pytest.raises(ValueError):
            ServiceConfig(tenants=default_tenants(1), capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(tenants=default_tenants(1), jobs_per_tenant=-1)
        with pytest.raises(ValueError):
            ServiceConfig(tenants=default_tenants(1), preempt_after=-5.0)
        with pytest.raises(ValueError):
            ServiceConfig(tenants=default_tenants(1), preempt_weight_factor=0.0)


class TestTelemetry:
    def test_service_events_emitted(self):
        from repro.telemetry.events import (
            ServiceJobCompleted,
            ServiceJobDispatched,
            ServiceJobQueued,
            ServiceSteadyState,
        )

        backend = SimBackend(seed=1, scheduler="fair")
        events = []
        backend.cluster.telemetry.subscribe(events.append, categories=("service",))
        report = run_service(
            ServiceConfig(tenants=default_tenants(2), jobs_per_tenant=2, seed=1),
            backend=backend,
        )
        queued = [e for e in events if isinstance(e, ServiceJobQueued)]
        dispatched = [e for e in events if isinstance(e, ServiceJobDispatched)]
        completed = [e for e in events if isinstance(e, ServiceJobCompleted)]
        steady = [e for e in events if isinstance(e, ServiceSteadyState)]
        assert len(queued) == len(dispatched) == len(completed) == 4
        assert len(steady) == 1
        assert steady[0].jobs_completed == report.jobs_completed
        assert steady[0].preemptions == report.preemptions
        counters = backend.cluster.telemetry.counters
        assert counters.get("service.queued") == 4
        assert counters.get("service.completed") == 4

    def test_no_service_events_without_subscriber(self):
        backend = SimBackend(seed=1, scheduler="fair")
        other = []
        backend.cluster.telemetry.subscribe(other.append, categories=("tuner",))
        assert not backend.cluster.telemetry.wants("service")
        run_service(
            ServiceConfig(tenants=default_tenants(1), jobs_per_tenant=1, seed=1),
            backend=backend,
        )


class TestPreemption:
    def test_starved_head_of_queue_preempts(self):
        from repro.telemetry.events import ServicePreemption

        tenants = (
            TenantSpec(
                name="heavy",
                weight=1.0,
                rate=1.0 / 5.0,
                profiles=("terasort",),
                slo_seconds=1e6,
            ),
            TenantSpec(
                name="light",
                weight=4.0,
                rate=1.0 / 5.0,
                profiles=("bbp",),
                slo_seconds=1e6,
            ),
        )
        backend = SimBackend(seed=3, scheduler="fair")
        events = []
        backend.cluster.telemetry.subscribe(events.append, categories=("service",))
        report = run_service(
            ServiceConfig(
                tenants=tenants,
                jobs_per_tenant=2,
                seed=3,
                capacity=1,
                tuned=False,
                preempt_after=20.0,
            ),
            backend=backend,
        )
        assert report.jobs_completed == 4
        assert report.preemptions >= 1
        preempt_events = [e for e in events if isinstance(e, ServicePreemption)]
        assert len(preempt_events) == report.preemptions
        for e in preempt_events:
            assert e.waited >= 20.0
            assert e.victim_tenant != e.tenant

    def test_preemption_disabled_with_none(self):
        report = run_service(
            ServiceConfig(
                tenants=default_tenants(2),
                jobs_per_tenant=2,
                seed=1,
                capacity=1,
                tuned=False,
                preempt_after=None,
            )
        )
        assert report.preemptions == 0


class TestAcceptance:
    """The ISSUE's headline gate: a >=200-job stream over >=3 tenants,
    with warm starts reaching the best cost in fewer waves than cold."""

    @pytest.fixture(scope="class")
    def warm(self):
        return run_service(
            ServiceConfig(tenants=default_tenants(3), jobs_per_tenant=70, seed=1)
        )

    @pytest.fixture(scope="class")
    def cold(self):
        return run_service(
            ServiceConfig(
                tenants=default_tenants(3),
                jobs_per_tenant=70,
                seed=1,
                warm_start=False,
            )
        )

    def test_stream_scale(self, warm):
        assert warm.jobs_completed == 210 >= 200
        assert len(warm.tenants) == 3
        assert warm.digest() == SERVICE_DIGEST_3X70_SEED1

    def test_warm_starts_dominate_steady_state(self, warm):
        # After the first job of each (tenant, profile, size) key, every
        # session seeds from the tenant knowledge base.
        assert warm.warm_sessions > 10 * warm.cold_sessions

    def test_warm_reaches_best_in_fewer_waves_than_cold_arm(self, warm, cold):
        assert cold.warm_sessions == 0
        assert warm.warm_sessions > 0
        assert warm.warm_mean_wave_of_best < cold.cold_mean_wave_of_best

    def test_warm_cost_no_worse_than_cold_arm(self, warm, cold):
        assert warm.warm_mean_best_cost <= cold.cold_mean_best_cost

    def test_within_run_warm_vs_cold(self, warm):
        # Even inside the warm arm, the (few) cold first-of-key sessions
        # need at least as many waves on average as the warm rest.
        assert warm.warm_mean_wave_of_best <= warm.cold_mean_wave_of_best


class TestLocalBackendSmoke:
    def test_service_loop_on_real_processes(self):
        tenants = (
            TenantSpec(
                name="solo",
                rate=1.0 / 2.0,
                profiles=("wordcount",),
                slo_seconds=600.0,
            ),
        )
        report = run_service_local(
            ServiceConfig(
                tenants=tenants,
                jobs_per_tenant=2,
                seed=1,
                capacity=1,
            ),
            num_splits=2,
            split_kb=4,
            num_reducers=1,
        )
        assert report.backend == "local"
        assert report.jobs_completed == 2
        assert len(report.tuning) == 2
        # Same tenant, same workload, same input: the second session
        # warm-starts from the first one's best config.
        assert report.tuning[0].warm_started is False
        assert report.tuning[1].warm_started is True
        assert all(j.p50_latency > 0 for j in report.tenants)


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 95) == 40.0
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile([], 50) == 0.0

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
