"""Edge cases for multi-tenancy, batch and service alike.

The degenerate shapes the ISSUE calls out: a tenant with nothing to
run, a single tenant (fair share collapses to FIFO), and a job mix of
one profile (every session after the first warm-starts).  The batch
multi-tenant experiment's own edges (empty seed list, case shapes,
memoization) ride along.
"""

import pytest

from repro.experiments.multitenant import (
    ROLES,
    _experiment_cache,
    bbp_case,
    run_multitenant_over_seeds,
    terasort_60gb_case,
)
from repro.service import (
    FairShareDispatcher,
    ServiceConfig,
    TenantSpec,
    generate_arrivals,
    run_service,
)


class TestEmptyTenant:
    def test_tenant_with_no_work_never_dispatches(self):
        d = FairShareDispatcher(2)
        d.add_tenant("busy", 1.0)
        d.add_tenant("empty", 5.0)
        for j in range(5):
            d.enqueue("busy", j)
        order = []
        while True:
            pick = d.start_next()
            if pick is None:
                break
            order.append(pick[0])
            d.finish(pick[0])
        assert order == ["busy"] * 5  # finish-then-drain churns the queue dry
        assert d.dispatched("empty") == 0
        assert d.preemption_victim(exclude=("busy",)) is None

    def test_zero_job_service_run(self):
        report = run_service(
            ServiceConfig(
                tenants=(TenantSpec(name="t", profiles=("bbp",)),),
                jobs_per_tenant=0,
                seed=1,
            )
        )
        assert report.jobs_completed == 0
        assert report.makespan == 0.0
        assert report.throughput_jobs_per_sec == 0.0
        assert report.tuning == ()
        # The report still names the (idle) tenant and stays digestable.
        assert len(report.tenants) == 1
        assert report.tenants[0].jobs == 0
        assert report.digest() == run_service(
            ServiceConfig(
                tenants=(TenantSpec(name="t", profiles=("bbp",)),),
                jobs_per_tenant=0,
                seed=1,
            )
        ).digest()


class TestSingleTenantDegenerateFairShare:
    def _run(self, weight):
        tenants = (
            TenantSpec(
                name="solo",
                weight=weight,
                rate=1.0 / 200.0,
                profiles=("bbp", "wordcount-wikipedia"),
                slo_seconds=5000.0,
            ),
        )
        return run_service(
            ServiceConfig(
                tenants=tenants,
                jobs_per_tenant=4,
                seed=9,
                capacity=2,
                tuned=False,
            )
        )

    def test_weight_is_irrelevant_with_one_tenant(self):
        """Fair share over one tenant is FIFO; its weight changes nothing
        but the label in the report."""
        a = self._run(weight=1.0)
        b = self._run(weight=7.5)
        assert a.makespan == b.makespan
        assert a.p50_latency == b.p50_latency
        assert a.p95_latency == b.p95_latency
        assert a.tenants[0].mean_queue_delay == b.tenants[0].mean_queue_delay

    def test_single_tenant_dispatch_is_fifo(self):
        d = FairShareDispatcher(1)
        d.add_tenant("solo", 0.25)
        for j in range(6):
            d.enqueue("solo", j)
        got = []
        while True:
            pick = d.start_next()
            if pick is None:
                break
            got.append(pick[1])
            d.finish("solo")
        assert got == list(range(6))


class TestAllJobsSameProfile:
    def test_only_first_job_per_tenant_is_cold(self):
        tenants = tuple(
            TenantSpec(
                name=f"t{i}",
                rate=1.0 / 300.0,
                profiles=("bbp",),  # one profile: maximal KB reuse
                slo_seconds=1e6,
            )
            for i in range(2)
        )
        report = run_service(
            ServiceConfig(
                tenants=tenants,
                jobs_per_tenant=4,
                seed=5,
                capacity=1,  # strictly sequential: KB always populated
            )
        )
        assert report.jobs_completed == 8
        assert report.cold_sessions == len(tenants)
        assert report.warm_sessions == 8 - len(tenants)
        for record in report.tuning:
            assert record.warm_started == (record.index > 0)

    def test_same_profile_trace_is_single_profile(self):
        spec = TenantSpec(name="t", profiles=("terasort",))
        arrivals = generate_arrivals([spec], 20, seed=2)
        assert {a.profile for a in arrivals} == {"terasort"}


class TestBatchExperimentEdges:
    def test_empty_seed_list_is_a_no_op(self):
        before = dict(_experiment_cache)
        assert run_multitenant_over_seeds([]) == []
        assert _experiment_cache == before

    def test_case_shapes(self):
        ts = terasort_60gb_case()
        assert ts.dataset.num_blocks == 448
        assert ts.num_reducers == 200
        bbp = bbp_case()
        assert bbp.num_reducers == 1
        assert bbp.dataset.num_blocks == 100

    def test_roles_cover_both_apps_and_task_types(self):
        assert ROLES == ("Terasort-m", "Terasort-r", "BBP-m", "BBP-r")

    def test_cached_seeds_are_returned_without_rerun(self):
        sentinel = (object(), object())
        key = (999_999, None)
        _experiment_cache[key] = sentinel
        try:
            out = run_multitenant_over_seeds([999_999])
            assert out == [sentinel]
        finally:
            _experiment_cache.pop(key, None)
