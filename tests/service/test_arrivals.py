"""Seeded statistical tests for the trace-driven arrival generator.

Determinism is digest-pinned (the same (tenants, jobs, seed) triple
must replay bit-identically forever); the statistics are checked on
large single-tenant traces where the law of large numbers makes the
tolerances safe for a *fixed* seed.
"""

import math

import pytest

from repro.service.arrivals import (
    ARRIVAL_PATTERNS,
    JobArrival,
    TenantSpec,
    arrivals_digest,
    generate_arrivals,
)
from repro.service.service import default_tenants

#: The acceptance-scale trace: 3 default tenants x 70 jobs, seed 1 --
#: the exact stream `repro serve --backend sim` serves by default.
ARRIVALS_DIGEST_3X70_SEED1 = (
    "5554bf2cdb71a82ddfa8cbf062e1fe30b7334db16a3cd96ed7b77d31f727bdbe"
)


class TestDeterminism:
    def test_pinned_digest(self):
        arrivals = generate_arrivals(default_tenants(3), 70, seed=1)
        assert arrivals_digest(arrivals) == ARRIVALS_DIGEST_3X70_SEED1

    def test_same_seed_same_trace(self):
        a = generate_arrivals(default_tenants(3), 20, seed=7)
        b = generate_arrivals(default_tenants(3), 20, seed=7)
        assert a == b

    def test_different_seed_different_trace(self):
        a = generate_arrivals(default_tenants(3), 20, seed=1)
        b = generate_arrivals(default_tenants(3), 20, seed=2)
        assert arrivals_digest(a) != arrivals_digest(b)

    def test_tenant_streams_are_independent(self):
        """Adding a tenant never perturbs another tenant's stream."""
        both = generate_arrivals(default_tenants(2), 30, seed=5)
        alone = generate_arrivals(default_tenants(1), 30, seed=5)
        name = alone[0].tenant
        assert [a for a in both if a.tenant == name] == alone


class TestTraceShape:
    def test_sorted_and_uniquely_indexed(self):
        arrivals = generate_arrivals(default_tenants(3), 25, seed=3)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        keys = {(a.tenant, a.index) for a in arrivals}
        assert len(keys) == len(arrivals) == 3 * 25
        # Per-tenant indices are 0..n-1 in time order.
        for tenant in {a.tenant for a in arrivals}:
            idx = [a.index for a in arrivals if a.tenant == tenant]
            assert sorted(idx) == list(range(25))

    def test_profiles_drawn_from_mix(self):
        tenants = default_tenants(3)
        arrivals = generate_arrivals(tenants, 40, seed=2)
        mixes = {t.name: set(t.profiles) for t in tenants}
        for a in arrivals:
            assert a.profile in mixes[a.tenant]

    def test_zero_jobs_is_empty(self):
        assert generate_arrivals(default_tenants(2), 0, seed=1) == []


class TestPoissonStatistics:
    def test_interarrival_mean_matches_rate(self):
        rate = 1.0 / 100.0
        spec = TenantSpec(name="solo", rate=rate, pattern="poisson")
        arrivals = generate_arrivals([spec], 2000, seed=11)
        gaps = [
            b.time - a.time for a, b in zip(arrivals, arrivals[1:])
        ] + [arrivals[0].time]
        mean = sum(gaps) / len(gaps)
        # Fixed seed, 2000 samples: the empirical mean of Exp(1/100)
        # sits well within 10% of 100.
        assert abs(mean - 1.0 / rate) / (1.0 / rate) < 0.10

    def test_interarrival_cv_is_exponential_like(self):
        """Exponential gaps have coefficient of variation ~= 1."""
        spec = TenantSpec(name="solo", rate=1.0 / 50.0, pattern="poisson")
        arrivals = generate_arrivals([spec], 2000, seed=13)
        gaps = [b.time - a.time for a, b in zip(arrivals, arrivals[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(var) / mean
        assert 0.85 < cv < 1.15


class TestDiurnalStatistics:
    def test_peaks_where_configured(self):
        """More arrivals land in the half-period around the peak."""
        period = 1000.0
        spec = TenantSpec(
            name="solo",
            rate=1.0 / 20.0,
            pattern="diurnal",
            peak_time=250.0,
            amplitude=0.9,
            period=period,
        )
        arrivals = generate_arrivals([spec], 3000, seed=17)
        near_peak = 0
        for a in arrivals:
            phase = (a.time - spec.peak_time) % period
            if phase < period / 4 or phase > 3 * period / 4:
                near_peak += 1
        off_peak = len(arrivals) - near_peak
        # With amplitude 0.9 the peak half carries ~4x the trough half's
        # integrated rate; 1.5x is a wide deterministic margin.
        assert near_peak > 1.5 * off_peak

    def test_moving_peak_moves_the_mass(self):
        period = 1000.0

        def mass_at(peak):
            spec = TenantSpec(
                name="solo",
                rate=1.0 / 20.0,
                pattern="diurnal",
                peak_time=peak,
                amplitude=0.9,
                period=period,
            )
            arrivals = generate_arrivals([spec], 2000, seed=19)
            return sum(
                1
                for a in arrivals
                if (a.time % period) < period / 4
                or (a.time % period) > 3 * period / 4
            )

        # Arrivals clustered near phase 0 when the peak is at 0; near
        # phase period/2 (so NOT near 0) when the peak moves there.
        assert mass_at(0.0) > mass_at(period / 2)

    def test_diurnal_mean_rate_close_to_base_rate(self):
        """The cosine modulation integrates to the base rate."""
        rate = 1.0 / 30.0
        spec = TenantSpec(
            name="solo",
            rate=rate,
            pattern="diurnal",
            amplitude=0.8,
            period=500.0,
        )
        arrivals = generate_arrivals([spec], 3000, seed=23)
        empirical = len(arrivals) / arrivals[-1].time
        assert abs(empirical - rate) / rate < 0.12


class TestValidation:
    def test_patterns_constant(self):
        assert ARRIVAL_PATTERNS == ("poisson", "diurnal")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"weight": 0.0},
            {"weight": -1.0},
            {"rate": 0.0},
            {"pattern": "bursty"},
            {"profiles": ()},
            {"profiles": ("no-such-profile",)},
            {"amplitude": 1.5},
            {"amplitude": -0.1},
            {"slo_seconds": 0.0},
            {"period": 0.0},
        ],
    )
    def test_bad_tenant_spec(self, kwargs):
        base = dict(name="t", profiles=("terasort",))
        base.update(kwargs)
        with pytest.raises(ValueError):
            TenantSpec(**base)

    def test_local_workload_profiles_accepted(self):
        spec = TenantSpec(name="t", profiles=("wordcount", "grep"))
        assert spec.profiles == ("wordcount", "grep")

    def test_duplicate_tenant_names_rejected(self):
        t = TenantSpec(name="dup", profiles=("bbp",))
        with pytest.raises(ValueError, match="duplicate"):
            generate_arrivals([t, t], 5, seed=1)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            generate_arrivals(default_tenants(1), -1, seed=1)

    def test_digest_sensitive_to_profile(self):
        a = JobArrival(time=1.0, tenant="t", index=0, profile="bbp")
        b = JobArrival(time=1.0, tenant="t", index=0, profile="terasort")
        assert arrivals_digest([a]) != arrivals_digest([b])
