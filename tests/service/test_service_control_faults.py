"""Control-plane faults injected into the *service* path.

The fault plan rides in ``ServiceConfig.fault_plan`` (as JSON, so the
frozen config stays hashable) and is armed on the service's own
simulated cluster before the arrival stream starts.  A tuner crash
mid-stream must leave every job completed, emit the
``tuner_crash``/``tuner_recovered`` telemetry pair, and stay seeded:
two identical faulted runs produce byte-identical reports.
"""

import pytest

from repro.backends.sim import SimBackend
from repro.faults import Fault, FaultPlan, plan_to_json
from repro.service import ServiceConfig, default_tenants, run_service

PLAN = FaultPlan(
    faults=(
        Fault(time=400.0, kind="tuner_crash", node_id=0, duration=120.0),
        Fault(time=900.0, kind="monitor_outage", node_id=0, duration=60.0),
    )
)


def make_config(**overrides) -> ServiceConfig:
    base = dict(
        tenants=default_tenants(2, rate=1.0 / 300.0),
        jobs_per_tenant=4,
        seed=3,
        capacity=2,
        fault_plan=plan_to_json(PLAN),
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestServiceControlFaults:
    def test_stream_completes_under_tuner_crash(self):
        report = run_service(make_config())
        assert report.jobs_completed == 8
        assert len(report.tuning) == 8

    def test_faulted_run_is_deterministic(self):
        assert run_service(make_config()).digest() == run_service(
            make_config()
        ).digest()

    def test_crash_and_recovery_telemetry(self):
        backend = SimBackend(seed=3, scheduler="fair")
        events = []
        backend.cluster.telemetry.subscribe(
            lambda ev: events.append(ev), ("tuner", "fault")
        )
        run_service(make_config(), backend=backend)
        crashes = [e for e in events if e.kind == "tuner_crash"]
        recoveries = [e for e in events if e.kind == "tuner_recovered"]
        outages = [e for e in events if e.kind == "monitor_outage"]
        assert len(crashes) == 1 and crashes[0].time == 400.0
        assert crashes[0].down_until == 520.0
        assert len(recoveries) == 1 and recoveries[0].time == 520.0
        assert recoveries[0].downtime == 120.0
        assert len(outages) == 1

    def test_kill_and_resume_under_faults(self, tmp_path):
        from repro.recovery import ServiceKilled

        reference = run_service(make_config())
        journal = str(tmp_path / "svc.journal")
        with pytest.raises(ServiceKilled):
            run_service(make_config(journal_path=journal, kill_after_jobs=2))
        resumed = run_service(make_config(journal_path=journal))
        assert resumed.digest() == reference.digest()

    def test_fault_plan_changes_fingerprint(self):
        assert (
            make_config().fingerprint()
            != make_config(fault_plan=None).fingerprint()
        )
