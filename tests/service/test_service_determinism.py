"""Determinism gates for the service subsystem.

Two identical service runs must produce byte-identical warm-start
seeds and final reports -- whatever ran earlier in the process, because
report identity is (tenant, profile, arrival index), never a
process-global job id.  The three-arm experiment's combined digest is
additionally gated serial-vs-pool, and the legacy subsystem pins are
re-asserted here so a service-layer change that leaks into the kernel,
fault, or backend paths fails loudly in this suite too.
"""

from repro.experiments.service import run_service_experiment
from repro.service import ServiceConfig, default_tenants, run_service

#: Warm run, 3 default tenants x 4 jobs, seed 1 (the quick gate).
SERVICE_DIGEST_3X4_SEED1 = (
    "a1741bea0a9a6a5bf10c8f8e2bb09333d192d54ab59e573671396bd8db773d68"
)

# The pre-existing subsystem pins this PR must not move (asserted at
# the source in their own suites; re-pinned here as a tripwire).
LEGACY_KERNEL_DIGEST = (
    "db9d5a9d41e8f7ff8cdd25b6f8d1b687484a3f750e13a89c9f61b1dd7ad77fde"
)
LEGACY_FAULT_DIGEST = (
    "ccf9c4baf5b2ac219cf561bb6e04538866ba0589bc907c36f19323fe9c1074ab"
)
LEGACY_BACKEND_DIGEST = (
    "490cd13c2e8c104fa0ef753276ef6dbc38d0430a37442992f931e9256f8bfbdd"
)


def small_config(**overrides):
    kwargs = dict(
        tenants=default_tenants(3), jobs_per_tenant=4, seed=1
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


class TestRunDeterminism:
    def test_pinned_service_digest(self):
        report = run_service(small_config())
        assert report.digest() == SERVICE_DIGEST_3X4_SEED1

    def test_identical_runs_byte_identical(self):
        a = run_service(small_config())
        b = run_service(small_config())
        assert a.render() == b.render()
        assert a.digest() == b.digest()

    def test_identical_runs_same_warm_start_seeds(self):
        """The knowledge-base seed configs replay bit-identically."""
        a = run_service(small_config())
        b = run_service(small_config())
        seeds_a = [
            (r.tenant, r.profile, r.index, r.warm_started, r.seed_config)
            for r in a.tuning
        ]
        seeds_b = [
            (r.tenant, r.profile, r.index, r.warm_started, r.seed_config)
            for r in b.tuning
        ]
        assert seeds_a == seeds_b
        assert any(r.warm_started for r in a.tuning), (
            "expected at least one warm-started session in the gate run"
        )

    def test_seed_changes_digest(self):
        a = run_service(small_config(seed=1))
        b = run_service(small_config(seed=2))
        assert a.digest() != b.digest()

    def test_warm_start_flag_changes_digest(self):
        warm = run_service(small_config())
        cold = run_service(small_config(warm_start=False))
        assert warm.digest() != cold.digest()
        assert cold.warm_sessions == 0


class TestSerialVsPool:
    def test_combined_digest_serial_equals_pool(self):
        serial = run_service_experiment(jobs_per_tenant=4, parallel=False)
        pooled = run_service_experiment(
            jobs_per_tenant=4, parallel=True, max_workers=3
        )
        assert serial.combined_digest == pooled.combined_digest
        assert serial.warm.render() == pooled.warm.render()
        assert serial.default.render() == pooled.default.render()


class TestLegacyPinsUnchanged:
    def test_kernel_pin_is_the_sealed_value(self):
        from tests.sim.test_kernel_equivalence import SEED_COMBINED_DIGEST

        assert SEED_COMBINED_DIGEST == LEGACY_KERNEL_DIGEST

    def test_fault_pin_is_the_sealed_value(self):
        from tests.faults.test_determinism import NETWORK_FAULT_DIGEST

        assert NETWORK_FAULT_DIGEST == LEGACY_FAULT_DIGEST

    def test_backend_pin_is_the_sealed_value(self):
        from tests.backends.test_protocol import SIM_BACKEND_DIGEST

        assert SIM_BACKEND_DIGEST == LEGACY_BACKEND_DIGEST
