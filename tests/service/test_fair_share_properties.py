"""Property-based tests for the weighted fair-share dispatcher.

The three defining properties of the service's WFQ dispatcher, checked
over randomly generated tenant sets, weights, and arrival orders:

1. work conservation -- ``start_next`` returns ``None`` only when every
   queue is empty or every slot is busy; a drain loop never leaves idle
   capacity while anything is queued;
2. weighted-share convergence -- under sustained backlog each tenant's
   dispatch count tracks ``w_i / sum(w)`` of the total to within the
   per-tenant WFQ lag bound;
3. no starvation -- a backlogged tenant is dispatched within a bounded
   number of competitor dispatches, no matter how small its weight.

Hypothesis runs derandomized so CI never flakes on a lucky draw; a
seeded ``random`` sweep mirrors the same invariants without Hypothesis.
"""

import random

import pytest

from repro.service.queues import FairShareDispatcher

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the test extra
    HAVE_HYPOTHESIS = False

    def given(*_a, **_k):  # type: ignore[misc]
        return lambda fn: fn

    def settings(*_a, **_k):  # type: ignore[misc]
        return lambda fn: fn

    class st:  # type: ignore[no-redef]
        @staticmethod
        def lists(*_a, **_k):
            return None

        @staticmethod
        def floats(*_a, **_k):
            return None

        @staticmethod
        def integers(*_a, **_k):
            return None


needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

#: Weights bounded away from 0 and each other by at most 16x so the
#: lag-bound tolerances below stay small.
weights_strategy = st.lists(
    st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
    min_size=1,
    max_size=5,
)


def make_dispatcher(weights, capacity=1):
    d = FairShareDispatcher(capacity)
    for i, w in enumerate(weights):
        d.add_tenant(f"t{i}", w)
    return d


def drain_with_immediate_finish(d, n):
    """Dispatch *n* jobs, finishing each immediately (capacity 1 churn)."""
    order = []
    for _ in range(n):
        pick = d.start_next()
        if pick is None:
            break
        tenant, _item = pick
        order.append(tenant)
        d.finish(tenant)
    return order


# ----------------------------------------------------------------------
# 1. Work conservation
# ----------------------------------------------------------------------
@needs_hypothesis
@given(
    weights=weights_strategy,
    capacity=st.integers(min_value=1, max_value=4),
    backlog=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=5),
)
@settings(max_examples=80, deadline=None, derandomize=True)
def test_work_conservation(weights, capacity, backlog):
    d = make_dispatcher(weights, capacity)
    for i, w in enumerate(weights):
        for j in range(backlog[i % len(backlog)]):
            d.enqueue(f"t{i}", (i, j))
    while True:
        pick = d.start_next()
        if pick is None:
            break
    # None was returned: either no work remains, or no capacity remains.
    assert d.total_queued == 0 or d.idle_capacity == 0
    # And never over capacity through the normal path.
    assert d.running_total <= capacity


# ----------------------------------------------------------------------
# 2. Weighted-share convergence
# ----------------------------------------------------------------------
@needs_hypothesis
@given(weights=weights_strategy)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_weighted_share_convergence(weights):
    n = 400
    d = make_dispatcher(weights)
    # Sustained backlog: every tenant always has work.
    for i in range(len(weights)):
        for j in range(n):
            d.enqueue(f"t{i}", j)
    drain_with_immediate_finish(d, n)
    total_w = sum(weights)
    min_w = min(weights)
    for i, w in enumerate(weights):
        ideal = n * w / total_w
        got = d.dispatched(f"t{i}")
        # WFQ lag bound: backlogged vtimes stay within one service
        # quantum (1/min_w), so counts are within w/min_w + 1 of ideal.
        assert abs(got - ideal) <= w / min_w + 1.0, (
            f"tenant {i}: {got} dispatches vs ideal {ideal:.1f} "
            f"(weights={weights})"
        )


# ----------------------------------------------------------------------
# 3. No starvation
# ----------------------------------------------------------------------
@needs_hypothesis
@given(
    competitor_weights=st.lists(
        st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
    low_weight=st.floats(min_value=0.1, max_value=0.5, allow_nan=False),
    warmup=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_no_starvation_of_low_weight_tenant(competitor_weights, low_weight, warmup):
    d = make_dispatcher(competitor_weights)
    d.add_tenant("low", low_weight)
    for i in range(len(competitor_weights)):
        for j in range(1000):
            d.enqueue(f"t{i}", j)
    # Competitors churn for a while before the low-weight tenant shows
    # up (its vtime re-syncs to the virtual clock on enqueue).
    drain_with_immediate_finish(d, warmup)
    d.enqueue("low", "the one job")
    # Once enqueued at vclock, each competitor must advance past
    # vclock + 1/w_low before beating "low" again; that takes at most
    # ceil(w_i / w_low) dispatches each.
    bound = sum(int(w / low_weight) + 1 for w in competitor_weights) + 1
    order = drain_with_immediate_finish(d, bound)
    assert "low" in order, (
        f"low-weight tenant starved for {bound} dispatches "
        f"(competitors={competitor_weights}, low={low_weight})"
    )


@needs_hypothesis
@given(
    weights=weights_strategy,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_random_arrival_orders_preserve_fifo_per_tenant(weights, seed):
    """Whatever the interleaving, each tenant's jobs dispatch in FIFO order."""
    rng = random.Random(seed)
    d = make_dispatcher(weights, capacity=2)
    counters = [0] * len(weights)
    seen = {f"t{i}": [] for i in range(len(weights))}
    for _ in range(200):
        op = rng.random()
        tenant_i = rng.randrange(len(weights))
        tenant = f"t{tenant_i}"
        if op < 0.6:
            d.enqueue(tenant, counters[tenant_i])
            counters[tenant_i] += 1
        else:
            pick = d.start_next()
            if pick is not None:
                who, item = pick
                seen[who].append(item)
                d.finish(who)
    # Drain the rest.
    while True:
        pick = d.start_next()
        if pick is None:
            if d.total_queued == 0:
                break
            who2 = [t for t in d.tenants if d.running(t) > 0]
            if not who2:
                break
            d.finish(who2[0])
            continue
        who, item = pick
        seen[who].append(item)
        d.finish(who)
    for tenant, items in seen.items():
        assert items == sorted(items), f"{tenant} dispatched out of FIFO order"


# ----------------------------------------------------------------------
# Seeded non-Hypothesis mirror of the same invariants
# ----------------------------------------------------------------------
def test_seeded_sweep_share_and_conservation():
    rng = random.Random(1234)
    for _ in range(25):
        k = rng.randint(1, 5)
        weights = [rng.uniform(0.5, 8.0) for _ in range(k)]
        d = make_dispatcher(weights)
        n = 300
        for i in range(k):
            for j in range(n):
                d.enqueue(f"t{i}", j)
        drain_with_immediate_finish(d, n)
        total_w = sum(weights)
        min_w = min(weights)
        for i, w in enumerate(weights):
            ideal = n * w / total_w
            assert abs(d.dispatched(f"t{i}") - ideal) <= w / min_w + 1.0
        assert d.total_queued == k * n - n


# ----------------------------------------------------------------------
# Deterministic unit coverage: re-sync, preemption, and error paths
# ----------------------------------------------------------------------
class TestDispatcherMechanics:
    def test_idle_resync_prevents_credit_burst(self):
        d = make_dispatcher([1.0, 1.0])
        for j in range(20):
            d.enqueue("t0", j)
        drain_with_immediate_finish(d, 10)
        # t1 was idle throughout; on enqueue it re-syncs to the virtual
        # clock instead of bursting through 10 jobs of accumulated credit.
        for j in range(20):
            d.enqueue("t1", j)
        order = drain_with_immediate_finish(d, 10)
        assert order.count("t1") <= 6, f"idle tenant burst through: {order}"

    def test_force_start_runs_over_capacity(self):
        d = make_dispatcher([1.0, 1.0], capacity=1)
        d.enqueue("t0", "a")
        d.enqueue("t1", "b")
        assert d.start_next() is not None
        assert d.start_next() is None  # capacity exhausted
        item = d.force_start("t1")
        assert item == "b"
        assert d.running_total == 2 > d.capacity

    def test_preemption_victim_is_most_over_share(self):
        d = make_dispatcher([4.0, 1.0], capacity=4)
        for j in range(3):
            d.enqueue("t0", j)
        d.enqueue("t1", 0)
        while d.start_next() is not None:
            pass
        # t0 runs 3 jobs at weight 4 (0.75/share); t1 runs 1 at weight 1.
        assert d.preemption_victim() == "t1"
        assert d.preemption_victim(exclude=("t1",)) == "t0"
        d.finish("t1")
        assert d.preemption_victim(exclude=("t0",)) is None

    def test_error_paths(self):
        d = make_dispatcher([1.0])
        with pytest.raises(ValueError):
            d.add_tenant("t0")  # duplicate
        with pytest.raises(ValueError):
            d.add_tenant("bad", weight=0.0)
        with pytest.raises(ValueError):
            d.finish("t0")  # nothing running
        with pytest.raises(ValueError):
            d.force_start("t0")  # nothing queued
        with pytest.raises(ValueError):
            FairShareDispatcher(0)

    def test_accessors(self):
        d = make_dispatcher([2.0])
        assert d.tenants == ["t0"]
        assert d.weight("t0") == 2.0
        assert d.head("t0") is None
        d.enqueue("t0", "x")
        assert d.head("t0") == "x"
        assert d.queued("t0") == 1
        assert d.idle_capacity == 1
