"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["expedited"])
        assert args.seed == 1
        assert args.replicas == 1
        assert args.case == "terasort"

    def test_jobsize_sizes(self):
        args = build_parser().parse_args(["jobsize", "--sizes", "2,10"])
        assert args.sizes == "2,10"

    def test_invalid_replicas(self):
        assert main(["--replicas", "0", "list"]) == 2

    @pytest.mark.parametrize(
        "argv",
        [
            ["--kinds", "link_flaky", "--plan-json", "plans.json", "faults"],
            ["faults", "--kinds", "link_flaky", "--plan-json", "plans.json"],
            ["--kinds", "link_flaky", "faults", "--plan-json", "plans.json"],
        ],
    )
    def test_faults_flags_accepted_before_and_after_subcommand(self, argv):
        # PR 2's shared-flags convention: root declares real defaults,
        # the subparser re-declares with SUPPRESS, so either position
        # (or a mix) parses identically.
        args = build_parser().parse_args(argv)
        assert args.kinds == "link_flaky"
        assert args.plan_json == "plans.json"

    def test_faults_flags_default_to_none(self):
        args = build_parser().parse_args(["faults"])
        assert args.kinds is None
        assert args.plan_json is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["--optimizer", "spsa", "digest"],
            ["digest", "--optimizer", "spsa"],
        ],
    )
    def test_optimizer_flag_accepted_before_and_after_subcommand(self, argv):
        args = build_parser().parse_args(argv)
        assert args.optimizer == "spsa"

    def test_optimizer_defaults_to_hill_climb(self):
        args = build_parser().parse_args(["expedited"])
        assert args.optimizer == "hill_climb"

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["digest", "--optimizer", "bayesian"])

    def test_tuning_mode_composition(self):
        from repro.cli import _tuning_mode

        p = build_parser()
        args = p.parse_args(["digest", "--tuning", "aggressive", "--optimizer", "spsa"])
        assert _tuning_mode(args) == "aggressive:spsa"
        args = p.parse_args(["digest", "--tuning", "aggressive"])
        assert _tuning_mode(args) == "aggressive"
        # Non-aggressive modes never grow a backend suffix.
        args = p.parse_args(["digest", "--optimizer", "spsa"])
        assert _tuning_mode(args) == "none"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "terasort" in out
        assert "bbp" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "bigram-wikipedia" in out
        assert "676" in out

    def test_single_run_small_case(self, capsys):
        # 2 GB Terasort keeps this end-to-end test quick.
        from repro.workloads import suite

        original = suite.case_by_name

        def patched(name):
            if name == "tiny":
                return suite.terasort_case(2.0)
            return original(name)

        suite.case_by_name = patched
        try:
            assert main(["single-run", "--case", "tiny"]) == 0
        finally:
            suite.case_by_name = original
        out = capsys.readouterr().out
        assert "MRONLINE" in out

    def test_whatif_small(self, capsys):
        assert main(["whatif", "--size-gb", "1"]) == 0
        out = capsys.readouterr().out
        assert "best" in out

    def test_trace_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "trace-out"
        assert (
            main(
                [
                    "trace",
                    "--blocks", "2",
                    "--reducers", "1",
                    "--out", str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "digest:" in out
        assert "wordcount-wikipedia" in out
        for name in ("trace.jsonl", "trace.chrome.json", "trace.summary.txt"):
            assert (out_dir / name).exists()


class TestBackendFlag:
    @pytest.mark.parametrize(
        "argv",
        [
            ["--backend", "sim", "digest"],
            ["digest", "--backend", "sim"],
        ],
    )
    def test_backend_flag_accepted_before_and_after_subcommand(self, argv):
        args = build_parser().parse_args(argv)
        assert args.backend == "sim"

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["digest"])
        assert args.backend is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["digest", "--backend", "yarn"])

    def test_local_backend_rejected_for_sim_commands(self, capsys):
        assert main(["--backend", "local", "list"]) == 2
        assert "simulator-only" in capsys.readouterr().err

    def test_sim_backend_rejected_for_real(self, capsys):
        assert main(["real", "--backend", "sim"]) == 2
        assert "--backend local" in capsys.readouterr().err

    def test_real_defaults(self):
        args = build_parser().parse_args(["real"])
        assert args.workload == "wordcount"
        assert args.tuning == "aggressive"
        assert args.splits == 24
        assert args.split_kb == 32
        assert args.reducers == 4
        assert args.slots is None


class TestRealCommand:
    def test_real_small(self, capsys):
        assert (
            main(
                [
                    "real",
                    "--workload", "wordcount",
                    "--tuning", "aggressive",
                    "--splits", "12",
                    "--split-kb", "8",
                    "--reducers", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "waves" in out
        assert "default" in out and "tuned" in out
