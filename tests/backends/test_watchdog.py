"""The hung-worker watchdog of the local-process backend.

A worker that neither finishes nor dies would wedge a phase forever --
``futures_wait`` has no deadline of its own.  These tests plant a real
hang (a worker that sleeps far past its liveness deadline), watch the
watchdog SIGKILL it, and check the bookkeeping that follows: the hung
attempt retries as failure kind ``"hang"``, the job still succeeds,
``worker_hang`` telemetry fires, and no attempt temporaries leak.

The hang functions must live at module level: the process pool pickles
worker callables by reference.
"""

import time

import pytest

from repro.backends.local import (
    LocalProcessBackend,
    WatchdogSettings,
    generate_corpus,
    local_job_spec,
)
from repro.backends.local import backend as backend_mod
from repro.backends.local.worker import run_map_task
from repro.mapreduce.jobspec import TaskType
from repro.testing import assert_no_output_leaks
from repro.util.backoff import BackoffPolicy

#: Far past the test deadline, far under the suite timeout: the
#: watchdog must kill this sleep, never wait it out.
HANG_SECONDS = 600.0


def hang_first_attempt(spec):
    """Map worker whose task 0 hangs on its first attempt only."""
    if spec.index == 0 and spec.attempt == 0:
        time.sleep(HANG_SECONDS)
    return run_map_task(spec)


def hang_every_attempt(spec):
    """Map worker whose task 0 hangs on every attempt (a dead task)."""
    if spec.index == 0:
        time.sleep(HANG_SECONDS)
    return run_map_task(spec)


FAST_WATCHDOG = WatchdogSettings(
    map_deadline=1.0,
    reduce_deadline=5.0,
    poll_interval=0.1,
    backoff=BackoffPolicy(base=0.01, cap=0.05),
)


@pytest.fixture()
def corpus(tmp_path):
    corpus_dir = str(tmp_path / "corpus")
    generate_corpus(corpus_dir, num_splits=3, split_kb=4, seed=1)
    return corpus_dir


def run_with_hang(tmp_path, corpus, monkeypatch, hang_fn):
    monkeypatch.setattr(backend_mod, "run_map_task", hang_fn)
    events = []
    with LocalProcessBackend(
        workspace=str(tmp_path / "jobs"), seed=1, watchdog=FAST_WATCHDOG
    ) as backend:
        backend.telemetry.subscribe(lambda ev: events.append(ev), ("fault",))
        result = backend.run_job(local_job_spec("wordcount", corpus, 2))
        leaks = backend.leaked_temporaries()
    return result, events, leaks


class TestWatchdog:
    def test_hung_worker_is_killed_and_retried(
        self, tmp_path, corpus, monkeypatch
    ):
        result, events, leaks = run_with_hang(
            tmp_path, corpus, monkeypatch, hang_first_attempt
        )
        # The retry (attempt 1) runs clean, so the job succeeds.
        assert result.succeeded
        assert result.failure_reasons.get("hang") == 1
        hang_stats = [s for s in result.task_stats if s.failure_kind == "hang"]
        assert len(hang_stats) == 1
        assert hang_stats[0].attempt == 0
        assert "SIGKILLed by watchdog" in hang_stats[0].failure_reason
        hangs = [e for e in events if e.kind == "worker_hang"]
        assert len(hangs) == 1
        assert hangs[0].deadline == FAST_WATCHDOG.map_deadline
        assert not leaks

    def test_dead_task_exhausts_attempts_and_fails_job(
        self, tmp_path, corpus, monkeypatch
    ):
        result, events, _leaks = run_with_hang(
            tmp_path, corpus, monkeypatch, hang_every_attempt
        )
        # Bounded retry: MAX_ATTEMPTS hangs, then the phase gives up.
        assert not result.succeeded
        assert result.failure_reasons.get("hang") == backend_mod.MAX_ATTEMPTS
        assert (
            len([e for e in events if e.kind == "worker_hang"])
            == backend_mod.MAX_ATTEMPTS
        )

    def test_no_temporary_leaks_after_kill(self, tmp_path, corpus, monkeypatch):
        _result, _events, leaks = run_with_hang(
            tmp_path, corpus, monkeypatch, hang_first_attempt
        )
        assert not leaks
        assert_no_output_leaks(str(tmp_path / "jobs"))


class TestWatchdogSettings:
    def test_defaults_are_sane(self):
        wd = WatchdogSettings()
        assert wd.map_deadline < wd.reduce_deadline
        assert wd.deadline_for(TaskType.MAP) == wd.map_deadline
        assert wd.deadline_for(TaskType.REDUCE) == wd.reduce_deadline

    def test_validation(self):
        with pytest.raises(ValueError):
            WatchdogSettings(map_deadline=0.0)
        with pytest.raises(ValueError):
            WatchdogSettings(poll_interval=0.0)

    def test_watchdog_can_be_disabled(self, tmp_path, corpus):
        # None restores the unbounded-wait behavior for healthy jobs.
        with LocalProcessBackend(
            workspace=str(tmp_path / "jobs"), seed=1, watchdog=None
        ) as backend:
            assert backend.watchdog is None
            result = backend.run_job(local_job_spec("wordcount", corpus, 2))
        assert result.succeeded
        assert not result.failure_reasons

    def test_enabled_watchdog_does_not_perturb_healthy_runs(
        self, tmp_path, corpus
    ):
        with LocalProcessBackend(
            workspace=str(tmp_path / "jobs"), seed=1
        ) as backend:
            assert backend.watchdog is not None  # on by default
            result = backend.run_job(local_job_spec("wordcount", corpus, 2))
        assert result.succeeded
        assert not result.failure_reasons
