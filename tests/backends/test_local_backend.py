"""Local-process backend: real execution correctness and knob behavior."""

from __future__ import annotations

import collections
import os
import re

import pytest

from repro.backends.local import (
    LocalProcessBackend,
    generate_corpus,
    knobs_from_config,
    local_job_spec,
)
from repro.backends.local.worker import GREP_NEEDLE, KB_SCALE
from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.mapreduce.counters import Counter
from repro.mapreduce.jobspec import TaskType
from repro.testing import assert_no_output_leaks

WORD_RE = re.compile(r"[a-z']+")


def _read_corpus(corpus_dir):
    texts = {}
    for name in sorted(os.listdir(corpus_dir)):
        with open(os.path.join(corpus_dir, name), encoding="utf-8") as fh:
            texts[name] = fh.read()
    return texts


def _reference(workload: str, corpus_dir: str):
    """Pure-Python single-process answer for one workload."""
    texts = _read_corpus(corpus_dir)
    if workload == "wordcount":
        counts = collections.Counter()
        for text in texts.values():
            counts.update(WORD_RE.findall(text.lower()))
        return {k: str(v) for k, v in counts.items()}
    if workload == "grep":
        counts = collections.Counter()
        for text in texts.values():
            for word in WORD_RE.findall(text.lower()):
                if GREP_NEEDLE in word:
                    counts[word] += 1
        return {k: str(v) for k, v in counts.items()}
    if workload == "inverted-index":
        postings = collections.defaultdict(set)
        for name, text in texts.items():
            doc = os.path.splitext(name)[0]
            for word in WORD_RE.findall(text.lower()):
                postings[word].add(doc)
        return {k: ",".join(sorted(v)) for k, v in postings.items()}
    raise AssertionError(workload)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("corpus"))
    generate_corpus(directory, num_splits=5, split_kb=8, seed=7)
    return directory


class TestGeneratedCorpus:
    def test_deterministic(self, corpus_dir, tmp_path):
        again = str(tmp_path / "again")
        generate_corpus(again, num_splits=5, split_kb=8, seed=7)
        assert _read_corpus(again) == _read_corpus(corpus_dir)

    def test_split_sizing(self, corpus_dir):
        for name in os.listdir(corpus_dir):
            assert os.path.getsize(os.path.join(corpus_dir, name)) >= 8 * 1024


@pytest.mark.parametrize("workload", ["wordcount", "grep", "inverted-index"])
class TestRealExecutionCorrectness:
    def test_output_matches_reference(self, workload, corpus_dir, tmp_path):
        spec = local_job_spec(workload, corpus_dir, num_reducers=3)
        with LocalProcessBackend(workspace=str(tmp_path / "ws")) as backend:
            result = backend.run_job(spec)
            assert result.succeeded, result.failure_reasons
            assert backend.read_output(spec) == _reference(workload, corpus_dir)
            assert_no_output_leaks(backend)


class TestKnobMechanics:
    def test_knob_decoding(self):
        config = Configuration()
        knobs = knobs_from_config(config, TaskType.MAP)
        assert knobs.sort_buffer_bytes == int(config[P.IO_SORT_MB]) * KB_SCALE
        assert knobs.spill_threshold == config[P.SORT_SPILL_PERCENT]
        assert knobs.container_memory_bytes == int(config[P.MAP_MEMORY_MB]) * KB_SCALE
        reduce_knobs = knobs_from_config(config, TaskType.REDUCE)
        assert (
            reduce_knobs.container_memory_bytes
            == int(config[P.REDUCE_MEMORY_MB]) * KB_SCALE
        )

    def test_smaller_sort_buffer_spills_more(self, tmp_path):
        """The Table-2 mechanics are real: io.sort.mb controls spills."""
        # Splits big enough that a 50-"MB" (KB-scaled) buffer spills
        # several times while a 400-"MB" one holds a split's whole
        # output.  (400 stays inside the default container heap; the
        # enforce_dependencies ceiling for 1024-"MB" memory is ~614.)
        corpus = str(tmp_path / "corpus")
        generate_corpus(corpus, num_splits=3, split_kb=32, seed=3)

        def spills(io_sort_mb: int, sub: str) -> float:
            config = Configuration({P.IO_SORT_MB: io_sort_mb})
            spec = local_job_spec(
                "wordcount", corpus, num_reducers=2, base_config=config
            )
            with LocalProcessBackend(workspace=str(tmp_path / sub)) as backend:
                result = backend.run_job(spec)
                assert result.succeeded
                return result.counters.get(Counter.SPILLED_RECORDS)

        assert spills(50, "small") > spills(400, "large")

    def test_identical_runs_identical_outputs(self, corpus_dir, tmp_path):
        """Outputs (not timings) are deterministic for a fixed config."""
        outs = []
        for sub in ("a", "b"):
            spec = local_job_spec("wordcount", corpus_dir, num_reducers=3)
            with LocalProcessBackend(workspace=str(tmp_path / sub)) as backend:
                assert backend.run_job(spec).succeeded
                outs.append(backend.read_output(spec))
        assert outs[0] == outs[1]


class TestFailureHandling:
    def test_oom_config_retries_on_base_and_sweeps(self, corpus_dir, tmp_path):
        """An infeasible config OOMs, retries on the base config, and the
        failed attempt's temporaries are swept."""
        # io.sort.mb far above the container heap: every first attempt
        # fails the admission check.  (The tuner only proposes
        # enforce_dependencies-clamped points, but a raw base_config can
        # lie -- the backend must fail it cleanly, not hang or leak.)
        config = Configuration({P.IO_SORT_MB: 1600, P.MAP_MEMORY_MB: 512})
        spec = local_job_spec(
            "wordcount", corpus_dir, num_reducers=2, base_config=config
        )
        with LocalProcessBackend(workspace=str(tmp_path / "ws")) as backend:
            result = backend.run_job(spec)
            # Retries land on the same (still infeasible) base config, so
            # the job fails -- but cleanly: stats for every attempt, oom
            # classified, temporaries swept.
            assert not result.succeeded
            assert result.failure_reasons.get("oom", 0) > 0
            assert result.counters.get(Counter.FAILED_TASK_ATTEMPTS) > 0
            assert any(s.failed and s.failure_kind == "oom" for s in result.task_stats)
            assert_no_output_leaks(backend)
            assert_no_output_leaks(backend.workspace)

    def test_feasible_oom_free(self, corpus_dir, tmp_path):
        """enforce_dependencies keeps sampled configs inside the heap."""
        from repro.core.configuration import enforce_dependencies

        config = enforce_dependencies(
            Configuration({P.IO_SORT_MB: 1600, P.MAP_MEMORY_MB: 512})
        )
        spec = local_job_spec(
            "wordcount", corpus_dir, num_reducers=2, base_config=config
        )
        with LocalProcessBackend(workspace=str(tmp_path / "ws")) as backend:
            result = backend.run_job(spec)
            assert result.succeeded
            assert result.counters.get(Counter.FAILED_TASK_ATTEMPTS) == 0
