"""Seeded smoke test: the tuner improves real executions, end to end.

This is the acceptance loop of the whole backend refactor: the gray-box
hill climber attached to :class:`LocalProcessBackend` must drive real
worker processes through multiple tuning waves and reduce its measured
Eq-1 cost.  Wall-clock timings are noisy at toy scale, so the assertion
is on the cost the climber actually optimizes (utilization + spill
ratio + normalized time over *measured* TaskStats), with a tolerance:
the best sampled cost must not be worse than the first wave's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.local import LocalProcessBackend, generate_corpus, local_job_spec
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.sim.rng import derive_seed
from repro.testing import assert_no_output_leaks

#: Noise guard: real timings wobble run to run, so instead of demanding
#: strict improvement we demand the search never *ends worse* than it
#: started by more than this fraction.
COST_TOLERANCE = 0.05


@pytest.mark.parametrize("seed", [1, 2])
def test_aggressive_tuning_improves_real_cost(seed, tmp_path):
    corpus = str(tmp_path / "corpus")
    generate_corpus(corpus, num_splits=24, split_kb=16, seed=seed)
    spec = local_job_spec("wordcount", corpus, num_reducers=4)
    tuner = OnlineTuner(
        TuningStrategy.AGGRESSIVE,
        settings=TunerSettings(
            hill_climb=HillClimbSettings(m=6, n=4, global_search_limit=1)
        ),
        rng=np.random.default_rng(derive_seed(seed, "real-tuner", "wordcount")),
    )
    with LocalProcessBackend(workspace=str(tmp_path / "ws")) as backend:
        handle = tuner.submit_to(backend, spec)
        result = backend.wait(handle)
        assert result.succeeded, result.failure_reasons
        assert_no_output_leaks(backend)

        summary = tuner.session_summary(spec.job_id)
        searches = summary["searches"]
        # The map side must complete >= 2 tuning waves of real tasks.
        assert searches["map"]["waves"] >= 2
        trajectory = searches["map"]["cost_trajectory"]
        assert trajectory, "climber never evaluated a sampled config"
        first_cost = trajectory[0][1]
        best_cost = searches["map"]["best_cost"]
        assert best_cost is not None
        assert best_cost <= first_cost * (1 + COST_TOLERANCE)

        # Tuned configs really reached the workers: multiple distinct
        # map-side configurations executed.
        map_configs = {
            tuple(sorted(s.config.items()))
            for s in result.task_stats
            if s.task_type.value == "map"
        }
        assert len(map_configs) >= 2

        # And the session yields a usable recommendation.
        recommended = tuner.recommended_config(spec.job_id)
        assert recommended["mapreduce.task.io.sort.mb"] > 0


def test_conservative_tuning_runs_real_job(tmp_path):
    corpus = str(tmp_path / "corpus")
    generate_corpus(corpus, num_splits=6, split_kb=8, seed=5)
    spec = local_job_spec("grep", corpus, num_reducers=2)
    tuner = OnlineTuner(
        TuningStrategy.CONSERVATIVE,
        rng=np.random.default_rng(derive_seed(5, "real-tuner", "grep")),
    )
    with LocalProcessBackend(workspace=str(tmp_path / "ws")) as backend:
        result = backend.wait(tuner.submit_to(backend, spec))
        assert result.succeeded
        summary = tuner.session_summary(spec.job_id)
        observed = summary["tasks_observed"]
        assert observed["map"] == 6
        assert observed["reduce"] == 2
