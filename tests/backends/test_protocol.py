"""Backend-protocol conformance: both runtimes honor one contract.

Every backend must accept a :class:`JobSpec`, return a completed
:class:`JobResult` with consistent counters and per-task statistics,
stream those statistics into the shared :class:`CentralMonitor`, and
fire completion callbacks.  The simulator side is additionally pinned
to a byte-exact digest: routing through the Backend protocol must not
perturb the deterministic kernel.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.backends import BACKEND_NAMES, Backend, JobHandle, make_backend
from repro.backends.local import (
    LocalProcessBackend,
    generate_corpus,
    local_job_spec,
)
from repro.backends.sim import SimBackend
from repro.mapreduce.counters import Counter

#: sha256 over (succeeded, duration, sorted counters) of the shrunk
#: wordcount-wikipedia case, seed 1, untuned, run through the Backend
#: API.  Any drift means the protocol refactor changed sim behavior.
SIM_BACKEND_DIGEST = (
    "490cd13c2e8c104fa0ef753276ef6dbc38d0430a37442992f931e9256f8bfbdd"
)


def _sim_backend_and_spec():
    from repro.experiments.parallel import RunRequest, resolve_case
    from repro.workloads.suite import make_job_spec

    case = resolve_case(
        RunRequest(
            case_name="wordcount-wikipedia",
            seed=1,
            tuning="none",
            num_blocks=6,
            num_reducers=3,
        )
    )
    backend = SimBackend(seed=1)
    return backend, make_job_spec(case, backend.hdfs)


def _local_backend_and_spec(tmp_path):
    corpus = str(tmp_path / "corpus")
    generate_corpus(corpus, num_splits=6, split_kb=8, seed=1)
    backend = LocalProcessBackend(workspace=str(tmp_path / "ws"))
    return backend, local_job_spec("wordcount", corpus, num_reducers=3)


@pytest.fixture(params=BACKEND_NAMES)
def backend_and_spec(request, tmp_path):
    if request.param == "sim":
        backend, spec = _sim_backend_and_spec()
    else:
        backend, spec = _local_backend_and_spec(tmp_path)
    yield request.param, backend, spec
    backend.close()


class TestProtocolConformance:
    def test_satisfies_protocols(self, backend_and_spec):
        name, backend, spec = backend_and_spec
        assert isinstance(backend, Backend)
        assert backend.name == name
        handle = backend.submit(spec)
        assert isinstance(handle, JobHandle)
        assert handle.spec is spec
        result = backend.wait(handle)
        assert result.succeeded

    def test_job_result_consistency(self, backend_and_spec):
        """Same jobspec shape -> same JobResult contract on any backend."""
        _name, backend, spec = backend_and_spec
        result = backend.run_job(spec)
        assert result.succeeded
        assert result.job_id == spec.job_id
        assert result.end_time >= result.start_time
        # 6 maps + 3 reducers on both sides of the fixture.
        assert len(result.task_stats) == 9
        assert result.counters.get(Counter.MAP_OUTPUT_RECORDS) > 0
        assert result.counters.get(Counter.SPILLED_RECORDS) > 0
        assert result.counters.get(Counter.SHUFFLED_BYTES) > 0
        assert result.counters.get(Counter.REDUCE_INPUT_RECORDS) > 0
        assert result.counters.get(Counter.FAILED_TASK_ATTEMPTS) == 0
        for stats in result.task_stats:
            assert stats.end_time >= stats.start_time
            assert stats.task_id.job_id == spec.job_id
            assert stats.config  # the effective Table-2 configuration

    def test_stats_stream_reaches_monitor(self, backend_and_spec):
        _name, backend, spec = backend_and_spec
        result = backend.run_job(spec)
        recorded = {s.task_id for s in backend.monitor.task_stats}
        assert {s.task_id for s in result.task_stats} <= recorded

    def test_completion_callbacks(self, backend_and_spec):
        _name, backend, spec = backend_and_spec
        handle = backend.submit(spec)
        seen = []
        handle.add_completion_callback(seen.append)
        result = backend.wait(handle)
        assert seen == [result]
        # Late registration fires immediately.
        late = []
        handle.add_completion_callback(late.append)
        assert late == [result]

    def test_stats_listeners_fire(self, backend_and_spec):
        _name, backend, spec = backend_and_spec
        handle = backend.submit(spec)
        seen = []
        handle.stats_listeners.append(seen.append)
        result = backend.wait(handle)
        assert len(seen) == len(result.task_stats)


class TestMakeBackend:
    def test_make_sim(self):
        backend = make_backend("sim", seed=3)
        assert isinstance(backend, SimBackend)
        assert backend.seed == 3

    def test_make_local(self, tmp_path):
        backend = make_backend("local", workspace=str(tmp_path / "ws"))
        assert isinstance(backend, LocalProcessBackend)
        backend.close()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("yarn")


class TestSimBackendDigest:
    def test_pinned_digest(self):
        """The Backend-API path must not perturb the sim kernel."""
        backend, spec = _sim_backend_and_spec()
        result = backend.run_job(spec)
        payload = repr(
            (
                result.succeeded,
                result.duration,
                tuple(sorted(result.counters.snapshot().items())),
            )
        ).encode("utf-8")
        assert hashlib.sha256(payload).hexdigest() == SIM_BACKEND_DIGEST
