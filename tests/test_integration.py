"""Cross-module integration tests (moderate-scale cluster runs)."""

import numpy as np
import pytest

from repro.core import parameters as P
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.mapreduce.counters import Counter
from repro.mapreduce.jobspec import TaskType
from repro.workloads.suite import case_by_name, make_job_spec, terasort_case


class TestPhysicalSanity:
    """The simulated cluster must respect conservation laws."""

    def test_shuffled_bytes_equal_map_outputs(self):
        sc = SimCluster(seed=2, start_monitors=False)
        result = sc.run_job(make_job_spec(terasort_case(4.0), sc.hdfs))
        c = result.counters
        assert c[Counter.SHUFFLED_BYTES] == pytest.approx(
            c[Counter.MAP_OUTPUT_BYTES], rel=0.01
        )

    def test_no_node_memory_oversubscription(self):
        sc = SimCluster(seed=2, start_monitors=False)
        am = sc.submit(make_job_spec(terasort_case(4.0), sc.hdfs))
        while not am.completion.triggered:
            sc.sim.step()
            for node in sc.cluster.nodes:
                assert node.yarn_memory_used <= node.yarn_memory_total
                assert node.yarn_vcores_used <= node.yarn_vcores_total

    def test_all_containers_released_at_job_end(self):
        sc = SimCluster(seed=2, start_monitors=False)
        sc.run_job(make_job_spec(terasort_case(4.0), sc.hdfs))
        assert sc.rm.live_container_count == 0
        for node in sc.cluster.nodes:
            assert node.yarn_memory_used == 0

    def test_task_counts_match_spec(self):
        case = terasort_case(4.0)
        sc = SimCluster(seed=2, start_monitors=False)
        result = sc.run_job(make_job_spec(case, sc.hdfs))
        ok_maps = [s for s in result.stats_of(TaskType.MAP) if not s.failed]
        ok_reds = [s for s in result.stats_of(TaskType.REDUCE) if not s.failed]
        assert len(ok_maps) == case.num_maps
        assert len(ok_reds) == case.num_reducers

    def test_map_locality_mostly_local(self):
        """With 3-way replication on 18 nodes, most maps run data-local,
        so cluster-wide HDFS read traffic stays near the input size."""
        sc = SimCluster(seed=2)
        case = terasort_case(10.0)
        result = sc.run_job(make_job_spec(case, sc.hdfs))
        local = 0
        f = sc.hdfs.get(f"/data/{case.dataset.name}")
        for s in result.stats_of(TaskType.MAP):
            block = f.blocks[s.task_id.index]
            if block.hosted_on(s.node_id):
                local += 1
        assert local / case.num_maps > 0.8


class TestTuningEndToEnd:
    def test_aggressive_beats_default_on_medium_terasort(self):
        case = terasort_case(20.0)
        sc_d = SimCluster(seed=5)
        default = sc_d.run_job(make_job_spec(case, sc_d.hdfs))

        sc_t = SimCluster(seed=5)
        spec = make_job_spec(case, sc_t.hdfs)
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(use_knowledge_base=False),
            rng=np.random.default_rng(5),
        )
        am = tuner.submit(sc_t, spec)
        sc_t.sim.run_until_complete(am.completion)
        best = tuner.recommended_config(spec.job_id)

        sc_b = SimCluster(seed=5)
        tuned = sc_b.run_job(make_job_spec(case, sc_b.hdfs, base_config=best))
        assert tuned.duration < default.duration

    def test_knowledge_base_transfers_across_runs(self):
        """A second tuning session warm-started from the knowledge base
        must start from (at least) the previous session's quality."""
        case = terasort_case(10.0)
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(
                hill_climb=HillClimbSettings(m=8, n=6, global_search_limit=2)
            ),
            rng=np.random.default_rng(3),
        )
        sc1 = SimCluster(seed=3)
        spec1 = make_job_spec(case, sc1.hdfs)
        am1 = tuner.submit(sc1, spec1)
        sc1.sim.run_until_complete(am1.completion)
        first_cfg = tuner.finalize_job(spec1.job_id)

        sc2 = SimCluster(seed=3)
        spec2 = make_job_spec(case, sc2.hdfs)
        am2 = tuner.submit(sc2, spec2)
        result2 = sc2.sim.run_until_complete(am2.completion)
        # The warm-start configuration was evaluated in run 2.
        tried = {
            (s.config[P.IO_SORT_MB], s.config[P.MAP_MEMORY_MB])
            for s in result2.stats_of(TaskType.MAP)
        }
        assert (first_cfg[P.IO_SORT_MB], first_cfg[P.MAP_MEMORY_MB]) in tried

    def test_conservative_spills_drop_within_the_run(self):
        """Later tasks of a conservatively tuned run spill less than the
        first (default-configured) wave -- tuning is visibly *online*."""
        case = case_by_name("wordcount-wikipedia")
        sc = SimCluster(seed=4)
        spec = make_job_spec(case, sc.hdfs)
        tuner = OnlineTuner(
            TuningStrategy.CONSERVATIVE, rng=np.random.default_rng(4)
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion)
        maps = sorted(result.stats_of(TaskType.MAP), key=lambda s: s.start_time)
        early = maps[: len(maps) // 4]
        late = maps[-len(maps) // 4 :]
        early_ratio = np.mean([s.spill_ratio for s in early])
        late_ratio = np.mean([s.spill_ratio for s in late])
        assert late_ratio < early_ratio

    def test_tuned_configs_differ_across_workloads(self):
        """Grep needs less sort space than Terasort (the paper's intro
        example): the tuner's recommendations must reflect that."""
        settings = TunerSettings(use_knowledge_base=False)
        recommendations = {}
        for name in ("terasort", "text-search-wikipedia"):
            case = case_by_name(name)
            sc = SimCluster(seed=6)
            spec = make_job_spec(case, sc.hdfs)
            tuner = OnlineTuner(
                TuningStrategy.AGGRESSIVE,
                settings=settings,
                rng=np.random.default_rng(6),
            )
            am = tuner.submit(sc, spec)
            sc.sim.run_until_complete(am.completion)
            recommendations[name] = tuner.recommended_config(spec.job_id)
        assert (
            recommendations["text-search-wikipedia"][P.IO_SORT_MB]
            < recommendations["terasort"][P.IO_SORT_MB]
        )
