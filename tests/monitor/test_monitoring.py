"""Tests for the monitoring stack."""

import pytest

from repro.cluster.topology import Cluster, ClusterSpec
from repro.mapreduce.jobspec import TaskId, TaskType
from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.slave_monitor import SlaveMonitor
from repro.monitor.statistics import NodeStats, TaskStats, UtilizationTimeline
from repro.sim import Simulator
from repro.yarn.node_manager import NodeManager

MB = 1024**2


def stats(job="j1", task_type=TaskType.MAP, index=0, **over):
    base = dict(
        task_id=TaskId(job, task_type, index),
        task_type=task_type,
        node_id=0,
        attempt=1,
        config={},
        start_time=0.0,
        end_time=10.0,
        cpu_seconds=5.0,
        allocated_cores=1.0,
        working_set_bytes=512 * MB,
        container_memory_bytes=1024 * MB,
        spilled_records=100,
        map_output_records=100,
    )
    base.update(over)
    return TaskStats(**base)


class TestTaskStats:
    def test_duration(self):
        assert stats(start_time=2.0, end_time=12.0).duration == 10.0

    def test_memory_utilization_capped(self):
        s = stats(working_set_bytes=2048 * MB)
        assert s.memory_utilization == 1.0

    def test_cpu_utilization(self):
        assert stats().cpu_utilization == pytest.approx(0.5)

    def test_cpu_utilization_zero_duration(self):
        assert stats(end_time=0.0).cpu_utilization == 0.0

    def test_spill_ratio_map_prefers_combine_records(self):
        s = stats(spilled_records=200, map_output_records=400, combine_output_records=100)
        assert s.spill_ratio == pytest.approx(2.0)

    def test_spill_ratio_zero_denominator(self):
        assert stats(map_output_records=0, spilled_records=0).spill_ratio == 0.0
        assert stats(map_output_records=0, spilled_records=5).spill_ratio == 1.0

    def test_spill_ratio_reduce_uses_shuffled_records(self):
        # A reduce attempt's denominator is its shuffled record count --
        # map-side counters must not leak into the reduce ratio.
        s = stats(
            task_type=TaskType.REDUCE,
            spilled_records=50,
            map_output_records=1000,
            combine_output_records=500,
            reduce_input_records=200,
        )
        assert s.spill_ratio == pytest.approx(0.25)

    def test_spill_ratio_reduce_zero_denominator(self):
        s = stats(task_type=TaskType.REDUCE, reduce_input_records=0, spilled_records=0)
        assert s.spill_ratio == 0.0
        s = stats(task_type=TaskType.REDUCE, reduce_input_records=0, spilled_records=9)
        assert s.spill_ratio == 1.0

    def test_cpu_utilization_zero_cores(self):
        assert stats(allocated_cores=0.0).cpu_utilization == 0.0

    def test_cpu_utilization_capped(self):
        assert stats(cpu_seconds=1e6).cpu_utilization == 1.0

    def test_negative_duration_clamped(self):
        # A failed attempt can record end_time == start_time (or, with
        # clock skew in a real deployment, even earlier); never negative.
        assert stats(start_time=10.0, end_time=4.0).duration == 0.0


class TestTimeline:
    def test_time_weighted_mean(self):
        tl = UtilizationTimeline()
        tl.add(0.0, 0.0)
        tl.add(10.0, 1.0)  # value 0 held for 10s
        tl.add(20.0, 1.0)  # value 1 held for 10s
        assert tl.mean() == pytest.approx(0.5)

    def test_since_filter(self):
        tl = UtilizationTimeline()
        tl.add(0.0, 0.0)
        tl.add(10.0, 1.0)
        tl.add(20.0, 1.0)
        assert tl.mean(since=10.0) == pytest.approx(1.0)

    def test_single_sample(self):
        tl = UtilizationTimeline()
        tl.add(5.0, 0.7)
        assert tl.mean() == 0.7

    def test_empty(self):
        assert UtilizationTimeline().mean() == 0.0
        assert UtilizationTimeline().latest() is None

    def test_window_carries_pre_window_level(self):
        # The level in effect when the window opens comes from the last
        # pre-window sample: value 0 still holds over [5, 10).
        tl = UtilizationTimeline()
        tl.add(0.0, 0.0)
        tl.add(10.0, 1.0)
        tl.add(20.0, 1.0)
        assert tl.mean(since=5.0) == pytest.approx(2.0 / 3.0)

    def test_window_aligned_with_sample_needs_no_boundary(self):
        tl = UtilizationTimeline()
        tl.add(0.0, 0.0)
        tl.add(10.0, 1.0)
        tl.add(20.0, 1.0)
        assert tl.mean(since=10.0) == pytest.approx(1.0)

    def test_window_past_last_sample_holds_the_level(self):
        tl = UtilizationTimeline()
        tl.add(0.0, 0.2)
        tl.add(10.0, 0.8)
        assert tl.mean(since=25.0) == pytest.approx(0.8)


class TestProgressBoard:
    def make_board(self):
        from repro.monitor.statistics import ProgressBoard

        return ProgressBoard()

    def tid(self, index=0, task_type=TaskType.MAP):
        return TaskId("j1", task_type, index)

    def test_start_update_finish_lifecycle(self):
        board = self.make_board()
        board.start(self.tid(), 1, TaskType.MAP, node_id=0, now=0.0)
        board.update(self.tid(), 1, 0.5)
        (entry,) = board.running()
        assert entry.fraction == 0.5
        board.finish(self.tid(), 1)
        assert board.running() == []

    def test_update_is_monotonic_and_capped(self):
        board = self.make_board()
        board.start(self.tid(), 1, TaskType.MAP, node_id=0, now=0.0)
        board.update(self.tid(), 1, 0.6)
        board.update(self.tid(), 1, 0.3)  # stale report never regresses
        assert board.running()[0].fraction == 0.6
        board.update(self.tid(), 1, 7.0)
        assert board.running()[0].fraction == 1.0

    def test_update_unknown_attempt_ignored(self):
        board = self.make_board()
        board.update(self.tid(), 1, 0.5)  # never started
        assert board.running() == []

    def test_attempts_of_orders_speculative_backups(self):
        board = self.make_board()
        board.start(self.tid(), 2, TaskType.MAP, node_id=1, now=5.0)
        board.start(self.tid(), 1, TaskType.MAP, node_id=0, now=0.0)
        board.start(self.tid(index=1), 1, TaskType.MAP, node_id=2, now=0.0)
        attempts = board.attempts_of(self.tid())
        assert [a.attempt for a in attempts] == [1, 2]
        assert all(str(a.task_id) == str(self.tid()) for a in attempts)

    def test_speculative_finish_removes_only_that_attempt(self):
        # The loser of a speculative race is cleaned up independently of
        # the winner: finishing attempt 1 leaves the backup running.
        board = self.make_board()
        board.start(self.tid(), 1, TaskType.MAP, node_id=0, now=0.0)
        board.start(self.tid(), 2, TaskType.MAP, node_id=1, now=5.0)
        board.finish(self.tid(), 1)
        assert [a.attempt for a in board.attempts_of(self.tid())] == [2]
        board.finish(self.tid(), 2)
        assert board.attempts_of(self.tid()) == []

    def test_finish_is_idempotent(self):
        board = self.make_board()
        board.start(self.tid(), 1, TaskType.MAP, node_id=0, now=0.0)
        board.finish(self.tid(), 1)
        board.finish(self.tid(), 1)  # double cleanup must not raise
        assert board.running() == []

    def test_running_order_is_deterministic(self):
        board = self.make_board()
        board.start(self.tid(index=2), 1, TaskType.REDUCE, node_id=0, now=0.0)
        board.start(self.tid(index=0), 1, TaskType.MAP, node_id=1, now=1.0)
        keys = [(str(p.task_id), p.attempt) for p in board.running()]
        assert keys == sorted(keys)


class TestCentralMonitor:
    def test_task_stats_routing(self):
        mon = CentralMonitor(Simulator())
        mon.on_task_stats(stats(job="a"))
        mon.on_task_stats(stats(job="b", task_type=TaskType.REDUCE, reduce_input_records=5))
        assert len(mon.stats_for_job("a")) == 1
        assert len(mon.stats_for_job("b", TaskType.REDUCE)) == 1
        assert mon.stats_for_job("b", TaskType.MAP) == []

    def test_listeners_notified(self):
        mon = CentralMonitor(Simulator())
        seen = []
        mon.task_listeners.append(seen.append)
        s = stats()
        mon.on_task_stats(s)
        assert seen == [s]

    def test_node_utilization_means(self):
        mon = CentralMonitor(Simulator())
        mon.on_node_stats(
            NodeStats(0, 0.0, cpu_utilization=0.2, memory_utilization=0.4, running_containers=1)
        )
        mon.on_node_stats(
            NodeStats(0, 10.0, cpu_utilization=0.2, memory_utilization=0.4, running_containers=1)
        )
        assert mon.mean_cpu_utilization() == pytest.approx(0.2)
        assert mon.mean_memory_utilization() == pytest.approx(0.4)

    def test_hot_nodes(self):
        mon = CentralMonitor(Simulator())
        mon.on_node_stats(NodeStats(3, 0.0, 0.95, 0.5, 2))
        mon.on_node_stats(NodeStats(4, 0.0, 0.10, 0.5, 2))
        assert mon.hot_nodes() == [3]


class TestSlaveMonitor:
    def test_periodic_sampling(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        samples = []
        mon = SlaveMonitor(sim, nm, samples.append, interval=2.0, network=cluster.network)
        mon.start()
        sim.run(until=7.0)
        assert len(samples) == 4  # t = 0, 2, 4, 6
        assert all(s.node_id == 0 for s in samples)

    def test_stop_ends_loop(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        samples = []
        mon = SlaveMonitor(sim, nm, samples.append, interval=2.0)
        mon.start()
        sim.run(until=3.0)
        mon.stop()
        sim.run(until=20.0)
        assert len(samples) <= 3

    def test_invalid_interval(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        with pytest.raises(ValueError):
            SlaveMonitor(sim, nm, lambda s: None, interval=0.0)

    def test_sample_reflects_cpu_load(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        node = cluster.nodes[0]
        nm = NodeManager(sim, node)
        node.compute(10_000.0, max_cores=4.0)
        sim.run(until=0.1)
        mon = SlaveMonitor(sim, nm, lambda s: None, network=cluster.network)
        s = mon.sample()
        assert s.cpu_utilization == pytest.approx(0.5)


class TestMonitorsOnTheBus:
    """The refactored wiring: monitors as telemetry-bus subscribers."""

    def test_central_monitor_consumes_bus_feeds(self):
        from repro.telemetry import NodeSampled, TaskStatsRecorded, TelemetryBus

        sim = Simulator()
        bus = TelemetryBus(clock=lambda: sim.now)
        mon = CentralMonitor(sim, bus=bus)
        bus.emit(TaskStatsRecorded(time=10.0, stats=stats(job="a")))
        bus.emit(NodeSampled(time=5.0, stats=NodeStats(0, 5.0, 0.3, 0.6, 1)))
        assert len(mon.stats_for_job("a")) == 1
        assert mon.mean_cpu_utilization() == pytest.approx(0.3)

    def test_slave_monitor_publishes_to_bus_without_sink(self):
        from repro.telemetry import TelemetryBus

        sim = Simulator()
        bus = TelemetryBus(clock=lambda: sim.now)
        sim.attach_telemetry(bus)
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        seen = []
        bus.subscribe(seen.append, categories=("node",))
        mon = SlaveMonitor(sim, nm, sink=None, interval=2.0, network=cluster.network)
        mon.start()
        sim.run(until=5.0)
        assert len(seen) == 3  # t = 0, 2, 4
        assert all(ev.category == "node" for ev in seen)

    def test_slave_monitor_without_bus_or_sink_is_silent(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        mon = SlaveMonitor(sim, nm, sink=None, interval=2.0)
        mon.start()
        sim.run(until=5.0)  # nothing to assert beyond "does not raise"
