"""Tests for the monitoring stack."""

import pytest

from repro.cluster.topology import Cluster, ClusterSpec
from repro.mapreduce.jobspec import TaskId, TaskType
from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.slave_monitor import SlaveMonitor
from repro.monitor.statistics import NodeStats, TaskStats, UtilizationTimeline
from repro.sim import Simulator
from repro.yarn.node_manager import NodeManager

MB = 1024**2


def stats(job="j1", task_type=TaskType.MAP, index=0, **over):
    base = dict(
        task_id=TaskId(job, task_type, index),
        task_type=task_type,
        node_id=0,
        attempt=1,
        config={},
        start_time=0.0,
        end_time=10.0,
        cpu_seconds=5.0,
        allocated_cores=1.0,
        working_set_bytes=512 * MB,
        container_memory_bytes=1024 * MB,
        spilled_records=100,
        map_output_records=100,
    )
    base.update(over)
    return TaskStats(**base)


class TestTaskStats:
    def test_duration(self):
        assert stats(start_time=2.0, end_time=12.0).duration == 10.0

    def test_memory_utilization_capped(self):
        s = stats(working_set_bytes=2048 * MB)
        assert s.memory_utilization == 1.0

    def test_cpu_utilization(self):
        assert stats().cpu_utilization == pytest.approx(0.5)

    def test_cpu_utilization_zero_duration(self):
        assert stats(end_time=0.0).cpu_utilization == 0.0

    def test_spill_ratio_map_prefers_combine_records(self):
        s = stats(spilled_records=200, map_output_records=400, combine_output_records=100)
        assert s.spill_ratio == pytest.approx(2.0)

    def test_spill_ratio_zero_denominator(self):
        assert stats(map_output_records=0, spilled_records=0).spill_ratio == 0.0
        assert stats(map_output_records=0, spilled_records=5).spill_ratio == 1.0


class TestTimeline:
    def test_time_weighted_mean(self):
        tl = UtilizationTimeline()
        tl.add(0.0, 0.0)
        tl.add(10.0, 1.0)  # value 0 held for 10s
        tl.add(20.0, 1.0)  # value 1 held for 10s
        assert tl.mean() == pytest.approx(0.5)

    def test_since_filter(self):
        tl = UtilizationTimeline()
        tl.add(0.0, 0.0)
        tl.add(10.0, 1.0)
        tl.add(20.0, 1.0)
        assert tl.mean(since=10.0) == pytest.approx(1.0)

    def test_single_sample(self):
        tl = UtilizationTimeline()
        tl.add(5.0, 0.7)
        assert tl.mean() == 0.7

    def test_empty(self):
        assert UtilizationTimeline().mean() == 0.0
        assert UtilizationTimeline().latest() is None


class TestCentralMonitor:
    def test_task_stats_routing(self):
        mon = CentralMonitor(Simulator())
        mon.on_task_stats(stats(job="a"))
        mon.on_task_stats(stats(job="b", task_type=TaskType.REDUCE, reduce_input_records=5))
        assert len(mon.stats_for_job("a")) == 1
        assert len(mon.stats_for_job("b", TaskType.REDUCE)) == 1
        assert mon.stats_for_job("b", TaskType.MAP) == []

    def test_listeners_notified(self):
        mon = CentralMonitor(Simulator())
        seen = []
        mon.task_listeners.append(seen.append)
        s = stats()
        mon.on_task_stats(s)
        assert seen == [s]

    def test_node_utilization_means(self):
        mon = CentralMonitor(Simulator())
        mon.on_node_stats(
            NodeStats(0, 0.0, cpu_utilization=0.2, memory_utilization=0.4, running_containers=1)
        )
        mon.on_node_stats(
            NodeStats(0, 10.0, cpu_utilization=0.2, memory_utilization=0.4, running_containers=1)
        )
        assert mon.mean_cpu_utilization() == pytest.approx(0.2)
        assert mon.mean_memory_utilization() == pytest.approx(0.4)

    def test_hot_nodes(self):
        mon = CentralMonitor(Simulator())
        mon.on_node_stats(NodeStats(3, 0.0, 0.95, 0.5, 2))
        mon.on_node_stats(NodeStats(4, 0.0, 0.10, 0.5, 2))
        assert mon.hot_nodes() == [3]


class TestSlaveMonitor:
    def test_periodic_sampling(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        samples = []
        mon = SlaveMonitor(sim, nm, samples.append, interval=2.0, network=cluster.network)
        mon.start()
        sim.run(until=7.0)
        assert len(samples) == 4  # t = 0, 2, 4, 6
        assert all(s.node_id == 0 for s in samples)

    def test_stop_ends_loop(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        samples = []
        mon = SlaveMonitor(sim, nm, samples.append, interval=2.0)
        mon.start()
        sim.run(until=3.0)
        mon.stop()
        sim.run(until=20.0)
        assert len(samples) <= 3

    def test_invalid_interval(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        nm = NodeManager(sim, cluster.nodes[0])
        with pytest.raises(ValueError):
            SlaveMonitor(sim, nm, lambda s: None, interval=0.0)

    def test_sample_reflects_cpu_load(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_slaves=1, racks=(1,)))
        node = cluster.nodes[0]
        nm = NodeManager(sim, node)
        node.compute(10_000.0, max_cores=4.0)
        sim.run(until=0.1)
        mon = SlaveMonitor(sim, nm, lambda s: None, network=cluster.network)
        s = mon.sample()
        assert s.cpu_utilization == pytest.approx(0.5)
