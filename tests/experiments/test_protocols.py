"""Tests for the per-figure experiment protocols (scaled down)."""

import pytest

from repro.core.hill_climbing import HillClimbSettings
from repro.experiments.expedited import (
    map_side_spills,
    optimal_spills,
    run_aggressive_tuning,
    run_default,
    run_expedited_case,
    run_with_config,
)
from repro.experiments.jobsize import run_job_size_point, run_sweep
from repro.experiments.multitenant import ROLES, bbp_case, co_run, terasort_60gb_case
from repro.experiments.single_run import run_conservative, run_single_run_case
from repro.workloads.suite import terasort_case

TINY_HC = HillClimbSettings(m=6, n=4, global_search_limit=1)


class TestExpeditedProtocol:
    def test_spill_helpers(self):
        case = terasort_case(2.0)
        result = run_default(case, seed=1)
        spills = map_side_spills(result)
        optimal = optimal_spills(result)
        # Default config double-writes Terasort map output.
        assert spills == pytest.approx(2 * optimal, rel=0.01)

    def test_tuned_rerun_and_result_shape(self):
        case = terasort_case(4.0)
        result = run_expedited_case(case, seed=1, hill_climb=TINY_HC)
        assert result.default_time > 0
        assert result.offline_time > 0
        assert result.mronline_time > 0
        assert result.optimal_spills <= result.default_spills
        assert result.mronline_spills <= result.default_spills * 1.01

    def test_tuning_run_returns_config(self):
        case = terasort_case(4.0)
        _result, config = run_aggressive_tuning(case, seed=1, hill_climb=TINY_HC)
        from repro.core.configuration import is_feasible

        assert is_feasible(config)

    def test_run_with_config_uses_it(self):
        from repro.core import parameters as P
        from repro.core.configuration import Configuration
        from repro.mapreduce.jobspec import TaskType

        case = terasort_case(2.0)
        cfg = Configuration({P.IO_SORT_MB: 200})
        result = run_with_config(case, 1, cfg)
        assert all(
            s.config[P.IO_SORT_MB] == 200 for s in result.stats_of(TaskType.MAP)
        )


class TestSingleRunProtocol:
    def test_outcome_shape(self):
        case = terasort_case(4.0)
        outcome = run_single_run_case(case, seed=1)
        assert outcome.default_time > 0
        assert outcome.mronline_time > 0
        assert -0.5 < outcome.improvement < 1.0

    def test_conservative_runner_returns_tuner(self):
        case = terasort_case(2.0)
        result, tuner = run_conservative(case, seed=1)
        assert result.succeeded
        assert tuner.recommended_config is not None


class TestJobSizeProtocol:
    def test_point_shape(self):
        point = run_job_size_point(2.0, seed=1, hill_climb=TINY_HC)
        assert point.num_maps == 16
        assert point.num_reducers == 4
        assert point.default_time > 0

    def test_sweep_runs_all_sizes(self):
        points = run_sweep(seed=1, sizes=(2.0, 4.0), hill_climb=TINY_HC)
        assert [p.size_gb for p in points] == [2.0, 4.0]


class TestMultiTenantProtocol:
    def test_cases_match_paper(self):
        ts = terasort_60gb_case()
        assert ts.num_maps == 448  # Section 8.5: 448 mappers
        assert ts.num_reducers == 200
        bbp = bbp_case()
        assert bbp.num_maps == 100
        assert bbp.num_reducers == 1

    def test_roles_enumerated(self):
        assert ROLES == ("Terasort-m", "Terasort-r", "BBP-m", "BBP-r")

    @pytest.mark.slow
    def test_co_run_produces_utilizations(self):
        outcome = co_run(seed=1)
        assert outcome.terasort_time > 0
        assert outcome.bbp_time > 0
        for role in ROLES:
            assert 0 <= outcome.utilization.memory[role] <= 1
            assert 0 <= outcome.utilization.cpu[role] <= 1
