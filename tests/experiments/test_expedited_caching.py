"""Tests for experiment memoization and the reporting unit guard."""


from repro.core.hill_climbing import HillClimbSettings
from repro.experiments import expedited
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import terasort_case

TINY_HC = HillClimbSettings(m=4, n=3, global_search_limit=1)


class TestExpeditedCache:
    def test_same_case_seed_settings_memoized(self):
        case = terasort_case(2.0)
        a = expedited.run_expedited_case(case, seed=11, hill_climb=TINY_HC)
        b = expedited.run_expedited_case(case, seed=11, hill_climb=TINY_HC)
        assert a is b  # Figures 4-6 and 7-9 share the same runs

    def test_different_seed_not_shared(self):
        case = terasort_case(2.0)
        a = expedited.run_expedited_case(case, seed=12, hill_climb=TINY_HC)
        b = expedited.run_expedited_case(case, seed=13, hill_climb=TINY_HC)
        assert a is not b

    def test_different_settings_not_shared(self):
        case = terasort_case(2.0)
        other = HillClimbSettings(m=5, n=3, global_search_limit=1)
        a = expedited.run_expedited_case(case, seed=14, hill_climb=TINY_HC)
        b = expedited.run_expedited_case(case, seed=14, hill_climb=other)
        assert a is not b


class TestReportingUnitGuard:
    def test_improvement_line_for_seconds(self):
        rep = FigureReport("F", "t", ["a"], unit="s")
        rep.add_series("Default", [100.0])
        rep.add_series("MRONLINE", [80.0])
        assert "+20.0%" in rep.render()

    def test_no_improvement_line_for_utilization(self):
        """"x% better" is wrong for higher-is-better utilization plots."""
        rep = FigureReport("F", "t", ["a"], unit="frac")
        rep.add_series("Default", [0.4])
        rep.add_series("MRONLINE", [0.8])
        assert "%" not in rep.render().split("\n")[-1] or "frac" in rep.render()
        assert "vs Default" not in rep.render()
