"""Tests for the task-timeline trace exporter."""

import csv
import io

import pytest

from repro.cluster.topology import ClusterSpec
from repro.experiments.harness import SimCluster
from repro.experiments.trace import CSV_FIELDS, save_csv, swimlanes, to_csv
from repro.workloads.suite import make_job_spec, terasort_case


@pytest.fixture(scope="module")
def result():
    sc = SimCluster(
        seed=1, cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
    )
    return sc.run_job(make_job_spec(terasort_case(2.0), sc.hdfs))


class TestCsv:
    def test_one_row_per_attempt(self, result):
        rows = list(csv.DictReader(io.StringIO(to_csv(result))))
        assert len(rows) == len(result.task_stats)

    def test_fields_present(self, result):
        rows = list(csv.DictReader(io.StringIO(to_csv(result))))
        assert set(rows[0]) == set(CSV_FIELDS)

    def test_sorted_by_start(self, result):
        rows = list(csv.DictReader(io.StringIO(to_csv(result))))
        starts = [float(r["start"]) for r in rows]
        assert starts == sorted(starts)

    def test_types_roundtrip(self, result):
        rows = list(csv.DictReader(io.StringIO(to_csv(result))))
        for row in rows:
            assert row["type"] in ("map", "reduce")
            assert float(row["end"]) >= float(row["start"])

    def test_save(self, result, tmp_path):
        path = str(tmp_path / "trace.csv")
        save_csv(result, path)
        with open(path) as fh:
            assert fh.readline().startswith("task_id,")


class TestSwimlanes:
    def test_one_lane_per_node(self, result):
        sketch = swimlanes(result)
        nodes = {s.node_id for s in result.task_stats}
        assert sketch.count("node") == len(nodes)

    def test_contains_map_and_reduce_glyphs(self, result):
        sketch = swimlanes(result)
        assert "m" in sketch
        assert "r" in sketch or "B" in sketch

    def test_width_respected(self, result):
        sketch = swimlanes(result, width=40)
        for line in sketch.splitlines()[1:]:
            assert len(line) <= 40 + 10  # label + bars

    def test_lane_cap(self, result):
        sketch = swimlanes(result, max_lanes=2)
        assert sketch.count("node") == 2

    def test_empty_result(self):
        from repro.mapreduce.counters import Counters
        from repro.yarn.app_master import JobResult

        empty = JobResult("j", True, 0.0, 0.0, Counters(), [])
        assert swimlanes(empty) == "(no tasks)"
