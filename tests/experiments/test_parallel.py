"""Tests for the process-pool experiment executor.

The load-bearing property is *digest equality*: fanning runs out over
worker processes must be bit-identical to the legacy serial loop for
every workload profile.  The pool mechanics (ordering, crash retry,
timeout surfacing, serial fallback) are covered with injected workers.
"""

import os
import pickle
import time

import pytest

from repro.experiments import parallel as par
from repro.experiments.harness import ExperimentRunner
from repro.experiments.parallel import (
    CandidateEval,
    ParallelExperimentRunner,
    RunRequest,
    RunTimeoutError,
    WorkerCrashError,
    combined_digest,
    execute_request,
    map_seeds,
    offline_candidate_search,
    resolve_case,
    resolve_workers,
    run_digest,
    run_requests,
    serialize_config,
)

#: One shrunk instance per workload profile family (all six workloads).
SMALL_CASES = [
    ("terasort", 6, 3),
    ("wordcount-wikipedia", 4, 2),
    ("bigram-wikipedia", 4, 2),
    ("inverted-index-freebase", 4, 2),
    ("text-search-freebase", 4, 2),
    ("bbp", 3, 1),
]


# ----------------------------------------------------------------------
# Injectable workers (top-level: they must pickle)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _sleep_forever(x):
    time.sleep(30)
    return x


def _crash_once(marker_and_value):
    """Dies hard on first sight of each marker path, succeeds after."""
    marker, value = marker_and_value
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(3)  # kill the worker process outright (not an exception)
    return value * 10


def _always_raise(x):
    raise RuntimeError(f"deterministic failure for {x}")


class TestRunRequest:
    def test_pickle_roundtrip(self):
        from repro.core.configuration import Configuration

        req = RunRequest.build(
            "terasort",
            seed=3,
            config=Configuration({"mapreduce.task.io.sort.mb": 320}),
            scheduler="fair",
            tuning="conservative",
            num_blocks=8,
            num_reducers=2,
        )
        clone = pickle.loads(pickle.dumps(req))
        assert clone == req
        assert clone.config() == req.config()
        assert clone.config()["mapreduce.task.io.sort.mb"] == 320

    def test_serialize_config_keeps_only_overrides(self):
        from repro.core.configuration import Configuration

        assert serialize_config(None) is None
        assert serialize_config(Configuration()) == ()
        pairs = serialize_config(Configuration({"mapreduce.task.io.sort.mb": 320}))
        assert pairs == (("mapreduce.task.io.sort.mb", 320),)

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            RunRequest("terasort", 1, tuning="psychic")
        with pytest.raises(ValueError):
            RunRequest("terasort", 1, num_blocks=0)
        with pytest.raises(ValueError):
            RunRequest("terasort", 1, num_reducers=0)

    def test_tuning_string_carries_optimizer_backend(self):
        from repro.experiments.parallel import parse_tuning

        assert parse_tuning("none") == ("none", "hill_climb")
        assert parse_tuning("aggressive") == ("aggressive", "hill_climb")
        assert parse_tuning("aggressive:spsa") == ("aggressive", "spsa")
        assert parse_tuning("aggressive:lhs") == ("aggressive", "lhs")
        with pytest.raises(ValueError):
            parse_tuning("aggressive:bayesian")
        with pytest.raises(ValueError):
            parse_tuning("conservative:spsa")  # nothing searches
        with pytest.raises(ValueError):
            RunRequest("terasort", 1, tuning="aggressive:bayesian")
        # Valid backend suffixes construct (and pickle) cleanly.
        req = RunRequest("terasort", 1, tuning="aggressive:random")
        assert pickle.loads(pickle.dumps(req)) == req

    def test_resolve_case_names_and_overrides(self):
        case = resolve_case(RunRequest("terasort-2gb", 1))
        assert case.name == "terasort-2gb"
        small = resolve_case(RunRequest("terasort", 1, num_blocks=5, num_reducers=2))
        assert small.dataset.num_blocks == 5
        assert small.num_reducers == 2
        # The shrunk dataset must not alias its full-size sibling.
        full = resolve_case(RunRequest("terasort", 1))
        assert small.dataset.name != full.dataset.name
        with pytest.raises(KeyError):
            resolve_case(RunRequest("no-such-benchmark", 1))


class TestDeterminism:
    @pytest.mark.parametrize("name,blocks,reducers", SMALL_CASES)
    def test_serial_and_parallel_digests_match(self, name, blocks, reducers):
        """Every workload profile: pool execution is bit-identical."""
        requests = [
            RunRequest(name, seed=s, num_blocks=blocks, num_reducers=reducers)
            for s in (1, 2)
        ]
        serial = run_requests(requests, max_workers=1)
        pooled = run_requests(requests, max_workers=2)
        assert [run_digest(o) for o in serial] == [run_digest(o) for o in pooled]
        assert combined_digest(serial) == combined_digest(pooled)
        assert all(o.succeeded for o in serial)
        assert all(o.job_time > 0 for o in serial)

    def test_outcome_carries_summaries(self):
        outcome = execute_request(RunRequest("terasort", 1, num_blocks=6, num_reducers=3))
        assert outcome.map_phase_time > 0
        assert outcome.reduce_phase_time > 0
        assert outcome.spilled_records > 0
        assert outcome.shuffled_bytes > 0
        assert dict(outcome.counters)["MAP_OUTPUT_RECORDS"] > 0
        assert 0.0 <= outcome.node_memory_utilization <= 1.0

    def test_tuned_run_is_deterministic_across_processes(self):
        request = RunRequest(
            "terasort", 1, num_blocks=8, num_reducers=2, tuning="conservative"
        )
        serial = run_requests([request], max_workers=1)
        pooled = run_requests([request], max_workers=2)
        assert run_digest(serial[0]) == run_digest(pooled[0])

    @pytest.mark.parametrize("backend", ["hill_climb", "spsa", "random", "lhs"])
    def test_every_optimizer_backend_is_deterministic_across_processes(self, backend):
        """Satellite gate: each backend's tuned run has one digest,
        serial or pooled (the CI job re-checks this via the CLI)."""
        tuning = "aggressive" if backend == "hill_climb" else f"aggressive:{backend}"
        request = RunRequest(
            "terasort", 1, num_blocks=8, num_reducers=4, tuning=tuning
        )
        serial = run_requests([request], max_workers=1)
        pooled = run_requests([request], max_workers=2)
        assert run_digest(serial[0]) == run_digest(pooled[0])
        assert serial[0].succeeded
        assert serial[0].recommended is not None


class TestPoolMechanics:
    def test_results_ordered_by_item(self):
        runner = ParallelExperimentRunner(max_workers=2, worker=_square)
        assert runner.run([3, 1, 2, 5]) == [9, 1, 4, 25]

    def test_empty_batch(self):
        runner = ParallelExperimentRunner(max_workers=2, worker=_square)
        assert runner.run([]) == []

    def test_worker_crash_retried_once(self, tmp_path):
        items = [(str(tmp_path / f"marker-{i}"), i) for i in range(3)]
        runner = ParallelExperimentRunner(max_workers=2, worker=_crash_once)
        assert runner.run(items) == [0, 10, 20]

    def test_crash_beyond_retry_budget_raises(self, tmp_path):
        # retries=0: the very first hard crash must surface.
        items = [(str(tmp_path / "marker-once"), 1)]
        runner = ParallelExperimentRunner(max_workers=2, worker=_crash_once, retries=0)
        with pytest.raises(WorkerCrashError):
            runner.run(items)

    def test_raising_worker_surfaces_after_retry(self):
        runner = ParallelExperimentRunner(max_workers=2, worker=_always_raise)
        with pytest.raises(WorkerCrashError, match="deterministic failure"):
            runner.run([7])

    def test_timeout_surfaced(self):
        runner = ParallelExperimentRunner(
            max_workers=2, worker=_sleep_forever, timeout=0.3
        )
        with pytest.raises(RunTimeoutError):
            runner.run([1])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ParallelExperimentRunner(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExperimentRunner(timeout=0)
        with pytest.raises(ValueError):
            ParallelExperimentRunner(retries=-1)


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(par.WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(par.WORKERS_ENV, "5")
        assert resolve_workers() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(par.WORKERS_ENV, raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv(par.WORKERS_ENV, "-2")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_workers_1_never_builds_a_pool(self, monkeypatch):
        """REPRO_WORKERS=1 must take the exact in-process path."""
        monkeypatch.setenv(par.WORKERS_ENV, "1")

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool constructed on the serial path")

        monkeypatch.setattr(
            par.concurrent.futures, "ProcessPoolExecutor", explode
        )
        # Closures are fine on the serial path -- nothing is pickled.
        assert map_seeds(lambda s: s + 1, [1, 2, 3]) == [2, 3, 4]


class TestHarnessIntegration:
    def test_measure_parallel_matches_serial(self):
        runner = ExperimentRunner(replicas=3, base_seed=5)
        serial = runner.measure(_square)
        pooled = runner.measure(_square, parallel=True, max_workers=2)
        assert pooled.values == serial.values

    def test_run_case_parallel_matches_serial(self):
        from repro.workloads.suite import terasort_case

        case = terasort_case(0.5)
        runner = ExperimentRunner(replicas=2, base_seed=1)
        serial = runner.run_case(case)
        pooled = runner.run_case(case, parallel=True, max_workers=2)
        assert [r.duration for r in serial] == [r.duration for r in pooled]
        assert [r.counters.snapshot() for r in serial] == [
            r.counters.snapshot() for r in pooled
        ]

    def test_run_case_accepts_table3_names(self):
        runner = ExperimentRunner(replicas=1)
        with pytest.raises(KeyError):
            runner.run_case("no-such-case")

    def test_run_case_validates_before_simulating(self, monkeypatch):
        """Bad inputs must raise before any cluster is built."""
        import repro.experiments.harness as harness

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("SimCluster built before validation")

        monkeypatch.setattr(harness, "SimCluster", explode)
        import dataclasses

        from repro.workloads.suite import terasort_case

        runner = ExperimentRunner(replicas=1)
        bad = dataclasses.replace(terasort_case(0.5), num_reducers=0)
        with pytest.raises(ValueError, match="num_reducers"):
            runner.run_case(bad)
        with pytest.raises(KeyError):
            runner.run_case("no-such-case")

    def test_run_case_rejects_factories_on_parallel_path(self):
        from repro.workloads.suite import terasort_case

        runner = ExperimentRunner(replicas=2)
        with pytest.raises(ValueError, match="factories"):
            runner.run_case(
                terasort_case(0.5),
                parallel=True,
                config_provider_factory=lambda sc, spec: None,
            )

    def test_measure_single_replica_stdev(self):
        runner = ExperimentRunner(replicas=1)
        m = runner.measure(_square)
        assert m.stdev == 0.0
        assert m.mean == 1.0


class TestOfflineCandidateSearch:
    SETTINGS = None  # built lazily to keep import cheap

    @classmethod
    def settings(cls):
        from repro.core.hill_climbing import HillClimbSettings

        if cls.SETTINGS is None:
            cls.SETTINGS = HillClimbSettings(
                m=3, n=2, global_search_limit=1, neighborhood_threshold=0.45,
                shrink_factor=0.5,
            )
        return cls.SETTINGS

    def test_search_returns_config_and_is_deterministic(self):
        serial = offline_candidate_search(
            "terasort", 1, settings=self.settings(), max_workers=1,
            num_blocks=4, num_reducers=2,
        )
        pooled = offline_candidate_search(
            "terasort", 1, settings=self.settings(), max_workers=2,
            num_blocks=4, num_reducers=2,
        )
        best_serial, cost_serial, evals_serial = serial
        best_pooled, cost_pooled, evals_pooled = pooled
        assert cost_serial == cost_pooled
        assert evals_serial == evals_pooled
        assert best_serial.as_dict() == best_pooled.as_dict()
        assert cost_serial > 0

    def test_candidate_eval_pickles(self):
        item = CandidateEval("terasort", 1, point=(0.5,) * 13, num_blocks=4)
        assert pickle.loads(pickle.dumps(item)) == item
