"""Tests for the experiment harness and reporting."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.experiments.harness import ExperimentRunner, RepeatedMeasurement, SimCluster
from repro.experiments.reporting import FigureReport, format_table
from repro.workloads.suite import terasort_case


class TestSimCluster:
    def test_scheduler_selection(self):
        assert SimCluster(scheduler="fifo", start_monitors=False)
        assert SimCluster(scheduler="fair", start_monitors=False)
        with pytest.raises(ValueError):
            SimCluster(scheduler="capacity")

    def test_monitors_collect_node_samples(self):
        sc = SimCluster(
            seed=0,
            cluster_spec=ClusterSpec(num_slaves=2, racks=(2,)),
            monitor_interval=1.0,
        )
        case = terasort_case(0.5)
        from repro.workloads.suite import make_job_spec

        sc.run_job(make_job_spec(case, sc.hdfs))
        assert len(sc.monitor.node_samples) > 0
        assert len(sc.monitor.task_stats) == case.num_maps + case.num_reducers


class TestExperimentRunner:
    def test_seed_list(self):
        runner = ExperimentRunner(replicas=4, base_seed=10)
        assert runner.seeds() == [10, 11, 12, 13]

    def test_measure_aggregates(self):
        runner = ExperimentRunner(replicas=3)
        m = runner.measure(lambda seed: float(seed))
        assert m.mean == pytest.approx(2.0)
        assert m.stdev == pytest.approx(1.0)

    def test_single_replica_stdev_zero(self):
        assert RepeatedMeasurement([5.0]).stdev == 0.0

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            ExperimentRunner(replicas=0)


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["name", "v"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_figure_report_series_validation(self):
        rep = FigureReport("Fig X", "test", ["a", "b"])
        with pytest.raises(ValueError):
            rep.add_series("s", [1.0])

    def test_improvement_computation(self):
        rep = FigureReport("Fig X", "test", ["a"])
        rep.add_series("Default", [100.0])
        rep.add_series("MRONLINE", [80.0])
        assert rep.improvement_over("Default", "MRONLINE") == [pytest.approx(0.2)]

    def test_render_includes_improvement_line(self):
        rep = FigureReport("Fig X", "test", ["a"])
        rep.add_series("Default", [100.0])
        rep.add_series("MRONLINE", [75.0])
        out = rep.render()
        assert "Fig X" in out
        assert "+25.0%" in out

    def test_render_notes(self):
        rep = FigureReport("Fig X", "t", ["a"], notes=["something"])
        rep.add_series("s", [1.0])
        assert "note: something" in rep.render()
