"""Reproducibility guarantees across the whole stack.

The evaluation's credibility rests on determinism: the same seed must
replay identically across processes and be insensitive to unrelated
global state (how many jobs ran before, which RNG streams were used by
other subsystems).
"""

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.workloads.suite import make_job_spec, terasort_case

SMALL = ClusterSpec(num_slaves=4, racks=(2, 2))


def run_once(seed, warmup_jobs=0):
    """One Terasort run, optionally after unrelated jobs on other clusters."""
    for w in range(warmup_jobs):
        sc_w = SimCluster(seed=99 + w, cluster_spec=SMALL, start_monitors=False)
        sc_w.run_job(make_job_spec(terasort_case(1.0), sc_w.hdfs))
    sc = SimCluster(seed=seed, cluster_spec=SMALL, start_monitors=False)
    return sc.run_job(make_job_spec(terasort_case(3.0), sc.hdfs))


class TestReplay:
    def test_same_seed_same_everything(self):
        a = run_once(7)
        b = run_once(7)
        assert a.duration == b.duration
        assert a.counters.snapshot() == b.counters.snapshot()
        assert [s.node_id for s in a.task_stats] == [s.node_id for s in b.task_stats]

    def test_insensitive_to_prior_jobs(self):
        """Global ID counters (jobs, containers, samples) must not leak
        into the physics of an independently seeded cluster."""
        clean = run_once(7)
        after_warmup = run_once(7, warmup_jobs=2)
        assert clean.duration == after_warmup.duration
        assert clean.counters.snapshot() == after_warmup.counters.snapshot()

    def test_tuned_run_replays(self):
        def tuned(seed):
            sc = SimCluster(seed=seed, cluster_spec=SMALL, start_monitors=False)
            spec = make_job_spec(terasort_case(3.0), sc.hdfs)
            tuner = OnlineTuner(
                TuningStrategy.CONSERVATIVE,
                settings=TunerSettings(conservative_window=6),
                rng=np.random.default_rng(seed),
            )
            am = tuner.submit(sc, spec)
            return sc.sim.run_until_complete(am.completion)

        a, b = tuned(5), tuned(5)
        assert a.duration == b.duration

    def test_seed_changes_placement(self):
        sc_a = SimCluster(seed=1, cluster_spec=SMALL, start_monitors=False)
        sc_b = SimCluster(seed=2, cluster_spec=SMALL, start_monitors=False)
        fa = sc_a.hdfs.create_file("/x", 10 * sc_a.hdfs.block_size)
        fb = sc_b.hdfs.create_file("/x", 10 * sc_b.hdfs.block_size)
        locs_a = [tuple(loc.node_id for loc in blk.locations) for blk in fa.blocks]
        locs_b = [tuple(loc.node_id for loc in blk.locations) for blk in fb.blocks]
        assert locs_a != locs_b
