"""Tests for deterministic random-stream management."""

from repro.sim import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")


def test_derive_seed_varies_with_path():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a") != derive_seed(43, "a")


def test_streams_are_memoized():
    reg = RngRegistry(7)
    assert reg.stream("lhs") is reg.stream("lhs")


def test_streams_are_independent():
    reg1 = RngRegistry(7)
    reg2 = RngRegistry(7)
    # Drawing from one stream must not perturb another.
    reg1.stream("noise").random(100)
    a = reg1.stream("lhs").random(5)
    b = reg2.stream("lhs").random(5)
    assert (a == b).all()


def test_child_registry_differs_from_parent():
    reg = RngRegistry(7)
    child = reg.child("replica", 0)
    a = reg.stream("x").random(3)
    b = child.stream("x").random(3)
    assert not (a == b).all()
