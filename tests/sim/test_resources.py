"""Tests for max-min fair flow scheduling, semaphores, and stores."""

import pytest

from repro.sim import FlowScheduler, Link, Semaphore, Simulator, Store
from repro.sim.resources import Flow, maxmin_rates


def make(sim=None):
    sim = sim or Simulator()
    return sim, FlowScheduler(sim)


class TestMaxMin:
    def test_single_flow_gets_full_capacity(self):
        link = Link("l", 100.0)
        f = Flow([link], 10.0, event=None)
        assert maxmin_rates([f])[f] == pytest.approx(100.0)

    def test_equal_flows_split_evenly(self):
        link = Link("l", 100.0)
        flows = [Flow([link], 10.0, event=None) for _ in range(4)]
        rates = maxmin_rates(flows)
        for f in flows:
            assert rates[f] == pytest.approx(25.0)

    def test_cap_limits_flow_and_frees_bandwidth(self):
        link = Link("l", 100.0)
        capped = Flow([link], 10.0, event=None, cap=10.0)
        free = Flow([link], 10.0, event=None)
        rates = maxmin_rates([capped, free])
        assert rates[capped] == pytest.approx(10.0)
        assert rates[free] == pytest.approx(90.0)

    def test_multilink_flow_bottlenecked_by_tightest(self):
        a = Link("a", 100.0)
        b = Link("b", 30.0)
        f = Flow([a, b], 10.0, event=None)
        assert maxmin_rates([f])[f] == pytest.approx(30.0)

    def test_conservation_no_link_oversubscribed(self):
        a = Link("a", 100.0)
        b = Link("b", 50.0)
        flows = [
            Flow([a], 1, event=None),
            Flow([a, b], 1, event=None),
            Flow([b], 1, event=None, cap=10.0),
            Flow([a, b], 1, event=None),
        ]
        rates = maxmin_rates(flows)
        for link in (a, b):
            used = sum(r for f, r in rates.items() if link in f.links)
            assert used <= link.capacity + 1e-6

    def test_empty_input(self):
        assert maxmin_rates([]) == {}


class TestFlowScheduler:
    def test_single_transfer_duration(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        done = sched.transfer([link], 500.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(5.0)

    def test_two_equal_transfers_share_bandwidth(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        d1 = sched.transfer([link], 500.0)
        d2 = sched.transfer([link], 500.0)
        sim.run_until_complete(d1)
        sim.run_until_complete(d2)
        # Both share 50 each until finishing together at t=10.
        assert sim.now == pytest.approx(10.0)

    def test_late_arrival_slows_first_flow(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        d1 = sched.transfer([link], 1000.0)  # alone: 10s

        def second():
            yield sim.timeout(5.0)
            yield sched.transfer([link], 250.0)

        sim.process(second())
        sim.run_until_complete(d1)
        # First 5s at 100 => 500 left; then shared at 50 while the 250-unit
        # flow runs (5s), finishing it at t=10 with 250 left; then full
        # speed: 2.5s more => total 12.5s.
        assert sim.now == pytest.approx(12.5)

    def test_zero_transfer_completes_immediately(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        done = sched.transfer([link], 0.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(0.0)

    def test_capped_transfer_duration(self):
        sim, sched = make()
        link = Link("net", 100.0)
        done = sched.transfer([link], 100.0, cap=10.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(10.0)

    def test_work_conservation_counter(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        for amount in (100.0, 200.0, 50.0):
            sched.transfer([link], amount)
        sim.run()
        assert sched.completed_work == pytest.approx(350.0)
        assert sched.completed_flows == 3

    def test_negative_amount_rejected(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        with pytest.raises(Exception):
            sched.transfer([link], -1.0)

    def test_utilization_reflects_active_flows(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        assert sched.utilization(link) == 0.0
        sched.transfer([link], 1000.0, cap=40.0)
        sim.run(until=1.0)
        assert sched.utilization(link) == pytest.approx(0.4)

    def test_utilization_stable_across_repeated_polls(self):
        # The epoch cache must not change what pollers observe: repeated
        # reads without intervening mutations return identical values.
        sim, sched = make()
        link = Link("disk", 100.0)
        sched.transfer([link], 1000.0, cap=30.0)
        sim.run(until=1.0)
        first = sched.utilization(link)
        assert all(sched.utilization(link) == first for _ in range(5))
        # A mutation invalidates the cache and is observed immediately.
        sched.transfer([link], 1000.0)
        assert sched.utilization(link) == pytest.approx(1.0)

    def test_batched_utilizations_match_individual(self):
        sim, sched = make()
        a, b, c = Link("a", 100.0), Link("b", 50.0), Link("c", 80.0)
        sched.transfer([a, b], 1000.0)
        sched.transfer([b, c], 1000.0, cap=10.0)
        sched.transfer([a], 500.0)
        sim.run(until=1.0)
        batched = sched.utilizations((a, b, c))
        # Bit-identical, not approx: same flow-order accumulation.
        assert batched == tuple(sched.utilization(lnk) for lnk in (a, b, c))

    def test_link_counts_consistent_after_churn(self):
        sim, sched = make()
        a, b = Link("a", 100.0), Link("b", 100.0)
        sched.transfer([a], 100.0, label="x.1")
        sched.transfer([a, b], 100.0, label="y.1")
        sched.transfer([b], 300.0, label="x.2")
        assert sched.cancel_prefix("x.") == 2
        sim.run()
        assert sched.active_flows == 0
        assert sched._link_counts == {}
        # The scheduler keeps working after the churn.
        done = sched.transfer([a, b], 100.0)
        sim.run_until_complete(done)
        assert sched.completed_flows == 2

    def test_set_link_capacity_invalidates_cached_rates(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        sched.transfer([link], 1000.0, cap=50.0)
        sim.run(until=1.0)
        assert sched.utilization(link) == pytest.approx(0.5)
        sched.set_link_capacity(link, 200.0)
        assert sched.utilization(link) == pytest.approx(0.25)

    def test_linkless_flow_runs_at_its_cap(self):
        # A flow traversing no links is bounded only by its own cap.
        sim, sched = make()
        done = sched.transfer([], 50.0, cap=10.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(5.0)

    def test_zero_cap_flow_rejected_as_stalled(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        with pytest.raises(Exception, match="none\\s+can make progress"):
            sched.transfer([link], 10.0, cap=0.0)

    def test_simultaneous_completions_fire_in_insertion_order(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        order = []
        for tag in ("a", "b", "c"):
            done = sched.transfer([link], 300.0, label=tag)
            done.add_callback(lambda ev, tag=tag: order.append(tag))
        sim.run()
        assert order == ["a", "b", "c"]


class TestSemaphore:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        order = []

        def worker(tag, hold):
            yield sem.acquire()
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            sem.release()
            order.append(("end", tag, sim.now))

        for tag, hold in (("a", 5.0), ("b", 5.0), ("c", 5.0)):
            sim.process(worker(tag, hold))
        sim.run()
        starts = {tag: t for kind, tag, t in order if kind == "start"}
        assert starts["a"] == 0.0
        assert starts["b"] == 0.0
        assert starts["c"] == 5.0  # had to wait for a slot

    def test_fifo_ordering(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        got = []

        def worker(tag):
            yield sem.acquire()
            got.append(tag)
            yield sim.timeout(1.0)
            sem.release()

        for tag in "abcd":
            sim.process(worker(tag))
        sim.run()
        assert got == list("abcd")

    def test_over_release_raises(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        with pytest.raises(Exception):
            sem.release()

    def test_oversized_request_rejected(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        with pytest.raises(Exception):
            sem.acquire(3)

    def test_cancel_mid_queue_preserves_fifo(self):
        # Cancel the middle waiter; the rest must still be served in
        # their original arrival order.
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        holder = sem.acquire()
        waiters = {tag: sem.acquire() for tag in "abc"}
        assert sem.cancel(waiters["b"]) is True
        sim.run()
        assert holder.triggered

        got = []

        def collect(tag, ev):
            ev.add_callback(lambda _e: got.append(tag))

        for tag in ("a", "c"):
            collect(tag, waiters[tag])
        sem.release()  # frees the slot; 'a' is granted
        sim.run()
        assert got == ["a"]
        sem.release()
        sim.run()
        assert got == ["a", "c"]
        assert not waiters["b"].triggered

    def test_cancel_granted_but_unfired_returns_false(self):
        # An acquire that was granted (permits charged, event scheduled)
        # but has not fired yet is no longer cancellable: the caller
        # holds the permits and must release them.
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        ev = sem.acquire()
        assert not ev.triggered  # granted, scheduled, not yet fired
        assert sem.cancel(ev) is False
        assert sem.in_use == 1
        sim.run()
        assert ev.triggered
        sem.release()
        assert sem.available == 1

    def test_cancel_unknown_event_returns_false(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        stranger = sim.event()
        assert sem.cancel(stranger) is False

    def test_cancelled_waiter_never_charged(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        a = sem.acquire(2)
        b = sem.acquire(2)
        assert sem.cancel(b) is True
        sim.run()
        assert a.triggered and not b.triggered
        assert sem.in_use == 2
        sem.release(2)
        assert sem.available == 2

    def test_multi_permit_fifo_blocks_smaller_later_request(self):
        # Strict FIFO: a 2-permit request at the head blocks a later
        # 1-permit request even when 1 permit is free.
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        first = sem.acquire(1)
        big = sem.acquire(2)
        small = sem.acquire(1)
        sim.run()
        assert first.triggered and not big.triggered and not small.triggered
        sem.release(1)
        sim.run()
        assert big.triggered and not small.triggered
        sem.release(2)
        sim.run()
        assert small.triggered


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        ev = store.get()
        assert sim.run_until_complete(ev) == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, sim.now))

        def putter():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        evs = [store.get() for _ in range(3)]
        sim.run()
        assert [e.value for e in evs] == [0, 1, 2]

    def test_fifo_with_waiting_getters(self):
        # Getters queued before any item exists are served in arrival
        # order as items trickle in.
        sim = Simulator()
        store = Store(sim)
        evs = [store.get() for _ in range(4)]
        for i in range(4):
            store.put(i)
        sim.run()
        assert [e.value for e in evs] == [0, 1, 2, 3]
        assert len(store) == 0

    def test_interleaved_put_get_ordering(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        g1 = store.get()
        g2 = store.get()
        store.put("b")
        store.put("c")
        sim.run()
        assert (g1.value, g2.value) == ("a", "b")
        assert len(store) == 1
