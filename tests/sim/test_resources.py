"""Tests for max-min fair flow scheduling, semaphores, and stores."""

import pytest

from repro.sim import FlowScheduler, Link, Semaphore, Simulator, Store
from repro.sim.resources import Flow, maxmin_rates


def make(sim=None):
    sim = sim or Simulator()
    return sim, FlowScheduler(sim)


class TestMaxMin:
    def test_single_flow_gets_full_capacity(self):
        link = Link("l", 100.0)
        f = Flow([link], 10.0, event=None)
        assert maxmin_rates([f])[f] == pytest.approx(100.0)

    def test_equal_flows_split_evenly(self):
        link = Link("l", 100.0)
        flows = [Flow([link], 10.0, event=None) for _ in range(4)]
        rates = maxmin_rates(flows)
        for f in flows:
            assert rates[f] == pytest.approx(25.0)

    def test_cap_limits_flow_and_frees_bandwidth(self):
        link = Link("l", 100.0)
        capped = Flow([link], 10.0, event=None, cap=10.0)
        free = Flow([link], 10.0, event=None)
        rates = maxmin_rates([capped, free])
        assert rates[capped] == pytest.approx(10.0)
        assert rates[free] == pytest.approx(90.0)

    def test_multilink_flow_bottlenecked_by_tightest(self):
        a = Link("a", 100.0)
        b = Link("b", 30.0)
        f = Flow([a, b], 10.0, event=None)
        assert maxmin_rates([f])[f] == pytest.approx(30.0)

    def test_conservation_no_link_oversubscribed(self):
        a = Link("a", 100.0)
        b = Link("b", 50.0)
        flows = [
            Flow([a], 1, event=None),
            Flow([a, b], 1, event=None),
            Flow([b], 1, event=None, cap=10.0),
            Flow([a, b], 1, event=None),
        ]
        rates = maxmin_rates(flows)
        for link in (a, b):
            used = sum(r for f, r in rates.items() if link in f.links)
            assert used <= link.capacity + 1e-6

    def test_empty_input(self):
        assert maxmin_rates([]) == {}


class TestFlowScheduler:
    def test_single_transfer_duration(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        done = sched.transfer([link], 500.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(5.0)

    def test_two_equal_transfers_share_bandwidth(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        d1 = sched.transfer([link], 500.0)
        d2 = sched.transfer([link], 500.0)
        sim.run_until_complete(d1)
        sim.run_until_complete(d2)
        # Both share 50 each until finishing together at t=10.
        assert sim.now == pytest.approx(10.0)

    def test_late_arrival_slows_first_flow(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        d1 = sched.transfer([link], 1000.0)  # alone: 10s

        def second():
            yield sim.timeout(5.0)
            yield sched.transfer([link], 250.0)

        sim.process(second())
        sim.run_until_complete(d1)
        # First 5s at 100 => 500 left; then shared at 50 while the 250-unit
        # flow runs (5s), finishing it at t=10 with 250 left; then full
        # speed: 2.5s more => total 12.5s.
        assert sim.now == pytest.approx(12.5)

    def test_zero_transfer_completes_immediately(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        done = sched.transfer([link], 0.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(0.0)

    def test_capped_transfer_duration(self):
        sim, sched = make()
        link = Link("net", 100.0)
        done = sched.transfer([link], 100.0, cap=10.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(10.0)

    def test_work_conservation_counter(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        for amount in (100.0, 200.0, 50.0):
            sched.transfer([link], amount)
        sim.run()
        assert sched.completed_work == pytest.approx(350.0)
        assert sched.completed_flows == 3

    def test_negative_amount_rejected(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        with pytest.raises(Exception):
            sched.transfer([link], -1.0)

    def test_utilization_reflects_active_flows(self):
        sim, sched = make()
        link = Link("disk", 100.0)
        assert sched.utilization(link) == 0.0
        sched.transfer([link], 1000.0, cap=40.0)
        sim.run(until=1.0)
        assert sched.utilization(link) == pytest.approx(0.4)


class TestSemaphore:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        order = []

        def worker(tag, hold):
            yield sem.acquire()
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            sem.release()
            order.append(("end", tag, sim.now))

        for tag, hold in (("a", 5.0), ("b", 5.0), ("c", 5.0)):
            sim.process(worker(tag, hold))
        sim.run()
        starts = {tag: t for kind, tag, t in order if kind == "start"}
        assert starts["a"] == 0.0
        assert starts["b"] == 0.0
        assert starts["c"] == 5.0  # had to wait for a slot

    def test_fifo_ordering(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        got = []

        def worker(tag):
            yield sem.acquire()
            got.append(tag)
            yield sim.timeout(1.0)
            sem.release()

        for tag in "abcd":
            sim.process(worker(tag))
        sim.run()
        assert got == list("abcd")

    def test_over_release_raises(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        with pytest.raises(Exception):
            sem.release()

    def test_oversized_request_rejected(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        with pytest.raises(Exception):
            sem.acquire(3)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        ev = store.get()
        assert sim.run_until_complete(ev) == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, sim.now))

        def putter():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        evs = [store.get() for _ in range(3)]
        sim.run()
        assert [e.value for e in evs] == [0, 1, 2]
