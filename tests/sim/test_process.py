"""Tests for generator-based processes."""


from repro.sim import AllOf, AnyOf, Interrupt, Simulator


def test_process_runs_and_returns():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "finished"

    p = sim.process(proc())
    assert sim.run_until_complete(p) == "finished"
    assert sim.now == 3.0


def test_yield_receives_event_value():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value=42)
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == [42]


def test_processes_compose():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return result

    p = sim.process(parent())
    assert sim.run_until_complete(p) == "child-result"


def test_failed_child_propagates_exception():
    sim = Simulator()

    class Boom(Exception):
        pass

    def child():
        yield sim.timeout(1.0)
        raise Boom()

    def parent():
        yield sim.process(child())

    p = sim.process(parent())
    sim.run()
    assert p.failed
    assert isinstance(p.exception, Boom)


def test_parent_can_catch_child_failure():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("x")

    def parent():
        try:
            yield sim.process(child())
        except ValueError:
            return "caught"
        return "not caught"

    p = sim.process(parent())
    assert sim.run_until_complete(p) == "caught"


def test_yield_non_event_fails_process():
    sim = Simulator()

    def proc():
        yield 5  # type: ignore[misc]

    p = sim.process(proc())
    sim.run()
    assert p.failed


def test_interrupt_wakes_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, sim.now))

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        p.interrupt(cause="wakeup")

    sim.process(interrupter())
    sim.run()
    assert ("interrupted", "wakeup", 2.0) in log


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return 1

    p = sim.process(quick())
    sim.run()
    p.interrupt()  # must not raise
    assert p.ok


def test_allof_waits_for_every_event():
    sim = Simulator()
    evs = [sim.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
    both = AllOf(sim, evs)
    assert sim.run_until_complete(both) == [1.0, 3.0, 2.0]
    assert sim.now == 3.0


def test_allof_empty_succeeds_immediately():
    sim = Simulator()
    ev = AllOf(sim, [])
    assert sim.run_until_complete(ev) == []


def test_anyof_fires_on_first():
    sim = Simulator()
    evs = [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]
    first = AnyOf(sim, evs)
    assert sim.run_until_complete(first) == (1, "fast")
    assert sim.now == 1.0
