"""Edge-case coverage for the simulation kernel."""

import pytest

from repro.sim import AllOf, Simulator
from repro.sim.engine import SimulationError


class TestEventStates:
    def test_failed_event_flags(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        sim.run()
        assert ev.failed and not ev.ok

    def test_succeed_after_fail_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("x"))
        with pytest.raises(SimulationError):
            ev.succeed(1)

    def test_callback_after_trigger_runs_immediately(self):
        sim = Simulator()
        ev = sim.timeout(1.0, value=7)
        sim.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == [7]

    def test_delayed_succeed(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        sim.run()
        assert sim.now == 5.0 and ev.value == "late"

    def test_cancel_triggered_event_rejected(self):
        sim = Simulator()
        ev = sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            ev.cancel()


class TestRunSafety:
    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(1.0)

        sim.process(forever())
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_reentrancy_guard(self):
        sim = Simulator()

        def sneaky():
            yield sim.timeout(1.0)
            sim.run()  # illegal: run inside run

        p = sim.process(sneaky())
        sim.run()
        assert p.failed
        assert isinstance(p.exception, SimulationError)

    def test_trace_log(self):
        # trace= is deprecated in favour of the telemetry bus, but the
        # shim still records into the (now bounded) trace_log deque.
        from repro.sim.engine import reset_trace_deprecation

        reset_trace_deprecation()
        with pytest.warns(DeprecationWarning):
            sim = Simulator(trace=True)
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert len(sim.trace_log) == 2
        assert sim.trace_log[0][0] == 1.0

    def test_trace_deprecation_warns_once_per_process(self):
        # Replica fan-outs build thousands of simulators; the shim must
        # not warn per construction.  One warning, then silence until
        # explicitly re-armed.
        import warnings as warnings_mod

        from repro.sim.engine import reset_trace_deprecation

        reset_trace_deprecation()
        with pytest.warns(DeprecationWarning):
            Simulator(trace=True)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            sim = Simulator(trace=True)  # must stay silent
        sim.timeout(1.0)
        sim.run()
        assert len(sim.trace_log) == 1
        reset_trace_deprecation()
        with pytest.warns(DeprecationWarning):
            Simulator(trace=True)

    def test_trace_log_is_bounded(self):
        from repro.sim.engine import TRACE_LOG_LIMIT

        sim = Simulator()
        assert sim.trace_log.maxlen == TRACE_LOG_LIMIT

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.events_executed == 5

    def test_run_until_complete_propagates_failure(self):
        sim = Simulator()

        def boom():
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        p = sim.process(boom())
        with pytest.raises(RuntimeError, match="kaput"):
            sim.run_until_complete(p)


class TestProcessComposition:
    def test_nested_three_levels(self):
        sim = Simulator()

        def leaf():
            yield sim.timeout(1.0)
            return 1

        def middle():
            v = yield sim.process(leaf())
            return v + 1

        def root():
            v = yield sim.process(middle())
            return v + 1

        assert sim.run_until_complete(sim.process(root())) == 3

    def test_allof_with_processes(self):
        sim = Simulator()

        def worker(d):
            yield sim.timeout(d)
            return d

        ev = AllOf(sim, [sim.process(worker(d)) for d in (3.0, 1.0, 2.0)])
        assert sim.run_until_complete(ev) == [3.0, 1.0, 2.0]

    def test_process_waiting_on_never_event_leaves_calendar_empty(self):
        sim = Simulator()
        never = sim.event()

        def waiter():
            yield never

        p = sim.process(waiter())
        sim.run()
        assert not p.triggered  # parked, not crashed
        assert sim.pending_events == 0
