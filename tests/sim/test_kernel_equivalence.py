"""Golden-digest equivalence tests for the simulation kernel.

The kernel hot paths (incremental max-min recomputes, in-place rates,
epoch-cached utilization, deque FIFOs, inlined event loop) were
optimized under a hard constraint: **byte-identical event ordering**.
These tests pin the optimized kernel to run digests recorded from the
seed (pre-optimization) kernel, across three seeds and three workload
profiles, fault-free and under a fixed fault scenario.

If any of these digests moves, a kernel change altered simulated
behaviour -- either fix the change or (for an intentional semantic
change) re-record the digests in a dedicated commit that says so.
"""

import pytest

from repro.experiments.parallel import RunRequest, combined_digest, run_requests

#: Dataset shrink per case (blocks, reducers) -- matches the CLI
#: ``digest`` subcommand's fixed experiment so the fault-free digests
#: here are directly comparable to the CI determinism gate.
CASE_SHAPES = {
    "terasort": (8, 4),
    "wordcount-wikipedia": (6, 3),
    "bigram-freebase": (6, 3),
}

#: The fixed fault scenario: the plan itself is drawn worker-side from
#: the run's seeded ``("faults", "plan")`` RNG stream, so these knobs
#: plus a seed fully determine the injected faults.
FAULT_KNOBS = (("container_kills", 2), ("crashes", 1), ("degraded", 1), ("horizon", 240.0))

#: Per-run sha256 digests recorded from the seed kernel (pre-PR).
GOLDEN_CLEAN = {
    ("terasort", 1): "ebdc042b57fe841e173522cfa222a08060292fb54d6381810bab7e82bb79cd6f",
    ("terasort", 2): "6f61f180d1cacabd6c6c9cae77662b2fdfd0f5f0d9b85df84e5673b158b213cb",
    ("terasort", 3): "95918b4c18870c201289caa1f8b3a849d314a87d361b71344ed65af56c483303",
    ("wordcount-wikipedia", 1): "9355d0a94c640fbe11d7051706ebd9acab11d2f7fff8f83a567c564ba3105758",
    ("wordcount-wikipedia", 2): "26a4395aaa7cac76a983a20ffb85617cd5b493b38e9a8eea16f52401ecd9739a",
    ("wordcount-wikipedia", 3): "15c3b55be0efe62a6a1727da2977416cbde02a7a5429a586581de15c16d9253d",
    ("bigram-freebase", 1): "5b94388705590a3a2cd50f8c725de3364d7bc3a303405a1195f156fc664726dd",
    ("bigram-freebase", 2): "f1390cae6f14cf720bf3adff8b66617737a4a95275bd250942dd6cb2bab26af0",
    ("bigram-freebase", 3): "d3091d69bc3ae560b9ed32b20d636ad20d23bfe5d699250814de12937228fcf2",
}

GOLDEN_FAULTED = {
    ("terasort", 1): "63dd39ecdf4b16fb757b2de9e81eaca35dee22a6f00bef31271059066388159b",
    ("terasort", 2): "c97357ba967d278458be083eef5a330e2ee0be0a1d37ca510968e1251f0b8b7e",
    ("terasort", 3): "968807768f364e9606fdbffb02450b61e8eeaa372c9b793db90fbf3fa2448d64",
    ("wordcount-wikipedia", 1): "a587ef5ceec743813492b23db8ed252b995c6ba449f8a356fa720b7d011c7e66",
    ("wordcount-wikipedia", 2): "a5636c870c7643a44c9d4c862ca91e25fbf4821fb8680d95918ee4dac079d0a9",
    ("wordcount-wikipedia", 3): "0e5002c9c005f4e362dd128045b64359356b4709246265c2b34da4978ec74b4a",
}

#: The seed fault-free combined digest -- the exact value the CI
#: determinism gate prints for ``python -m repro --replicas 2 digest``.
SEED_COMBINED_DIGEST = "db9d5a9d41e8f7ff8cdd25b6f8d1b687484a3f750e13a89c9f61b1dd7ad77fde"


def _request(case: str, seed: int, faulted: bool) -> RunRequest:
    blocks, reducers = CASE_SHAPES[case]
    return RunRequest(
        case_name=case,
        seed=seed,
        num_blocks=blocks,
        num_reducers=reducers,
        faults=FAULT_KNOBS if faulted else None,
    )


@pytest.fixture(scope="module")
def clean_outcomes():
    requests = [_request(case, seed, faulted=False) for case, seed in GOLDEN_CLEAN]
    return dict(zip(GOLDEN_CLEAN, run_requests(requests, max_workers=1)))


@pytest.fixture(scope="module")
def faulted_outcomes():
    requests = [_request(case, seed, faulted=True) for case, seed in GOLDEN_FAULTED]
    return dict(zip(GOLDEN_FAULTED, run_requests(requests, max_workers=1)))


def test_fault_free_digests_match_seed_kernel(clean_outcomes):
    mismatches = {
        key: outcome.digest()
        for key, outcome in clean_outcomes.items()
        if outcome.digest() != GOLDEN_CLEAN[key]
    }
    assert not mismatches, f"kernel drifted from seed behaviour: {mismatches}"


def test_fault_free_runs_succeed(clean_outcomes):
    assert all(o.succeeded for o in clean_outcomes.values())


def test_fault_scenario_digests_match_seed_kernel(faulted_outcomes):
    mismatches = {
        key: outcome.digest()
        for key, outcome in faulted_outcomes.items()
        if outcome.digest() != GOLDEN_FAULTED[key]
    }
    assert not mismatches, f"faulted kernel drifted from seed behaviour: {mismatches}"


def test_fault_scenarios_actually_injected(faulted_outcomes):
    # Guard against the scenario silently degenerating to fault-free
    # (which would make the faulted digests vacuous).
    assert all(o.injected_faults for o in faulted_outcomes.values())


def test_cli_combined_digest_matches_seed_kernel():
    """Replicates ``python -m repro --replicas 2 digest`` exactly."""
    from repro.cli import DIGEST_CASES

    requests = [
        RunRequest(case_name=name, seed=seed, num_blocks=blocks, num_reducers=reducers)
        for name, blocks, reducers in DIGEST_CASES
        for seed in (1, 2)
    ]
    outcomes = run_requests(requests, max_workers=1)
    assert combined_digest(outcomes) == SEED_COMBINED_DIGEST
