"""Tests for the event calendar and clock."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    for delay in (3.0, 1.0, 2.0):
        ev = sim.timeout(delay, value=delay)
        ev.add_callback(lambda e: fired.append(e.value))
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_ties_broken_by_schedule_order():
    sim = Simulator()
    fired = []
    for tag in "abc":
        ev = sim.timeout(1.0, value=tag)
        ev.add_callback(lambda e: fired.append(e.value))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_priority_beats_sequence_at_equal_time():
    sim = Simulator()
    fired = []
    low = sim.event()
    low.value = "low"
    high = sim.event()
    high.value = "high"
    sim.schedule(low, 1.0, priority=5)
    sim.schedule(high, 1.0, priority=0)
    low.add_callback(lambda e: fired.append(e.value))
    high.add_callback(lambda e: fired.append(e.value))
    sim.run()
    assert fired == ["high", "low"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(sim.event(), delay=-1.0)


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.timeout(10.0).add_callback(lambda e: fired.append("late"))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == ["late"]
    assert sim.now == 10.0


def test_run_until_complete_returns_value():
    sim = Simulator()
    ev = sim.timeout(2.0, value="done")
    assert sim.run_until_complete(ev) == "done"


def test_run_until_complete_raises_on_drained_calendar():
    sim = Simulator()
    ev = sim.event()  # never triggered
    with pytest.raises(SimulationError):
        sim.run_until_complete(ev)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.timeout(1.0)
    ev.add_callback(lambda e: fired.append(1))
    ev.cancel()
    sim.run()
    assert fired == []


def test_call_at_runs_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_call_at_rejects_past():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_event_cannot_fire_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    sim.run()
    with pytest.raises(SimulationError):
        ev.succeed(2)
