"""Property-based tests for max-min fair allocation.

These check the defining properties of max-min fairness on randomly
generated link/flow topologies:

1. feasibility -- no link is oversubscribed, no cap exceeded;
2. work conservation -- every flow is either at its cap or crosses a
   saturated link (nobody can be sped up for free);
3. max-min optimality (pairwise) -- increasing one flow's rate would
   require decreasing a flow with an equal-or-smaller rate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resources import Flow, Link, maxmin_rates

EPS = 1e-6


@st.composite
def topologies(draw):
    n_links = draw(st.integers(1, 6))
    links = [
        Link(f"l{i}", draw(st.floats(1.0, 1000.0))) for i in range(n_links)
    ]
    n_flows = draw(st.integers(1, 12))
    flows = []
    for i in range(n_flows):
        k = draw(st.integers(1, n_links))
        idx = draw(
            st.lists(
                st.integers(0, n_links - 1), min_size=k, max_size=k, unique=True
            )
        )
        cap = draw(
            st.one_of(st.none(), st.floats(0.5, 500.0))
        )
        flows.append(Flow([links[j] for j in idx], 100.0, event=None, cap=cap))
    return links, flows


def link_usage(link, flows, rates):
    return sum(r for f, r in rates.items() if link in f.links)


@given(topologies())
@settings(max_examples=200, deadline=None)
def test_feasibility(topo):
    links, flows = topo
    rates = maxmin_rates(flows)
    assert set(rates) == set(flows)
    for link in links:
        assert link_usage(link, flows, rates) <= link.capacity * (1 + EPS)
    for f in flows:
        assert rates[f] <= f.cap * (1 + EPS)
        assert rates[f] >= 0


@given(topologies())
@settings(max_examples=200, deadline=None)
def test_work_conservation(topo):
    """Every flow is blocked by its cap or by a saturated link."""
    links, flows = topo
    rates = maxmin_rates(flows)
    for f in flows:
        at_cap = rates[f] >= f.cap * (1 - EPS)
        crosses_saturated = any(
            link_usage(lnk, flows, rates) >= lnk.capacity * (1 - EPS) for lnk in f.links
        )
        assert at_cap or crosses_saturated, f"flow {f} has free headroom"


@given(topologies())
@settings(max_examples=150, deadline=None)
def test_maxmin_optimality_pairwise(topo):
    """A flow below its cap is blocked only by links where it already
    receives at least as much as every other flow could give up --
    i.e. raising it would hurt someone no better off."""
    links, flows = topo
    rates = maxmin_rates(flows)
    for f in flows:
        if rates[f] >= f.cap * (1 - EPS):
            continue
        saturated = [
            lnk
            for lnk in f.links
            if link_usage(lnk, flows, rates) >= lnk.capacity * (1 - EPS)
        ]
        assert saturated
        # On some saturated link, no coexisting flow has a higher rate
        # it could cede without becoming worse off than f.
        ok = False
        for lnk in saturated:
            sharers = [g for g in flows if lnk in g.links and g is not f]
            if all(rates[g] <= rates[f] * (1 + 1e-3) for g in sharers):
                ok = True
                break
        assert ok, f"{f} could be raised at the expense of better-off flows"


@given(
    capacity=st.floats(10.0, 1000.0),
    n=st.integers(1, 20),
)
@settings(max_examples=100, deadline=None)
def test_single_link_equal_split(capacity, n):
    link = Link("l", capacity)
    flows = [Flow([link], 1.0, event=None) for _ in range(n)]
    rates = maxmin_rates(flows)
    for f in flows:
        assert rates[f] == pytest.approx(capacity / n, rel=1e-6)


@given(
    capacity=st.floats(10.0, 100.0),
    caps=st.lists(st.floats(0.1, 50.0), min_size=2, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_total_throughput_never_exceeds_demand_or_capacity(capacity, caps):
    link = Link("l", capacity)
    flows = [Flow([link], 1.0, event=None, cap=c) for c in caps]
    rates = maxmin_rates(flows)
    total = sum(rates.values())
    assert total <= capacity * (1 + EPS)
    assert total <= sum(caps) * (1 + EPS)
    # Work conserving: total equals the binding constraint.
    assert total == pytest.approx(min(capacity, sum(caps)), rel=1e-5)
