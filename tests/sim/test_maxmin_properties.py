"""Property-based tests for max-min fair allocation.

These check the defining properties of max-min fairness on randomly
generated link/flow topologies:

1. feasibility -- no link is oversubscribed, no cap exceeded;
2. work conservation -- every flow is either at its cap or crosses a
   saturated link (nobody can be sped up for free);
3. max-min optimality (pairwise) -- increasing one flow's rate would
   require decreasing a flow with an equal-or-smaller rate;
4. reference equivalence -- the optimized in-place allocator returns
   *bit-identical* rates to the original dict-returning implementation
   (kept verbatim below), which is what lets the golden-digest suite
   trust the hot-path rewrite.

Hypothesis runs derandomized (fixed seed machinery) so CI never flakes
on a lucky draw; a seeded ``random``-driven sweep mirrors the same
invariants without Hypothesis, so the module still guards the kernel
if the dependency is ever dropped from the test extra.
"""

import random

import pytest

from repro.sim.resources import _EPS, Flow, Link, maxmin_rates

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the test extra
    HAVE_HYPOTHESIS = False

    def given(*_a, **_k):  # type: ignore[misc]
        return lambda fn: fn

    def settings(*_a, **_k):  # type: ignore[misc]
        return lambda fn: fn


EPS = 1e-6

needs_hypothesis = pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")


# ----------------------------------------------------------------------
# The original (pre-optimization) allocator, kept verbatim as the
# reference the in-place implementation must match bit-for-bit.
# ----------------------------------------------------------------------
def reference_maxmin_rates(flows):
    rates = {}
    if not flows:
        return rates
    active = list(flows)
    cap_left = {}
    counts = {}
    for f in active:
        for link in f.links:
            cap_left.setdefault(link, link.capacity)
            counts[link] = counts.get(link, 0) + 1

    while active:
        water = float("inf")
        for link, n in counts.items():
            if n > 0:
                share = cap_left[link] / n
                if share < water:
                    water = share
        if water == float("inf"):
            for f in active:
                rates[f] = f.cap
            break
        capped = [f for f in active if f.cap <= water + _EPS]
        if capped:
            frozen = capped
            frozen_rates = {f: min(f.cap, water) for f in frozen}
        else:
            bottlenecks = {
                link
                for link, n in counts.items()
                if n > 0 and cap_left[link] / n <= water + _EPS
            }
            frozen = [f for f in active if any(lnk in bottlenecks for lnk in f.links)]
            frozen_rates = {f: water for f in frozen}
        for f in frozen:
            r = frozen_rates[f]
            rates[f] = r
            for link in f.links:
                cap_left[link] = max(0.0, cap_left[link] - r)
                counts[link] -= 1
        active = [f for f in active if f not in rates]
    return rates


# ----------------------------------------------------------------------
# Shared invariant checkers (used by Hypothesis and the seeded sweep)
# ----------------------------------------------------------------------
def link_usage(link, flows, rates):
    return sum(r for f, r in rates.items() if link in f.links)


def check_feasibility(links, flows, rates):
    assert set(rates) == set(flows)
    for link in links:
        assert link_usage(link, flows, rates) <= link.capacity * (1 + EPS)
    for f in flows:
        assert rates[f] <= f.cap * (1 + EPS)
        assert rates[f] >= 0


def check_work_conservation(flows, rates):
    """Every flow is blocked by its cap or by a saturated link."""
    for f in flows:
        at_cap = rates[f] >= f.cap * (1 - EPS)
        crosses_saturated = any(
            link_usage(lnk, flows, rates) >= lnk.capacity * (1 - EPS) for lnk in f.links
        )
        assert at_cap or crosses_saturated, f"flow {f} has free headroom"


def check_reference_equivalence(flows):
    """The optimized allocator must match the reference *exactly*.

    Bitwise float equality, not approx: the kernel's determinism
    guarantee (and the golden run digests) rest on the rewrite changing
    no operation order in the arithmetic.
    """
    expected = reference_maxmin_rates(flows)
    actual = maxmin_rates(flows)
    assert actual == expected
    # The in-place side effect agrees with the returned mapping.
    for f in flows:
        assert f.rate == expected[f]


def random_topology(rng):
    n_links = rng.randint(1, 6)
    links = [Link(f"l{i}", rng.uniform(1.0, 1000.0)) for i in range(n_links)]
    flows = []
    for _ in range(rng.randint(1, 12)):
        k = rng.randint(1, n_links)
        idx = rng.sample(range(n_links), k)
        cap = None if rng.random() < 0.4 else rng.uniform(0.5, 500.0)
        flows.append(Flow([links[j] for j in idx], 100.0, event=None, cap=cap))
    return links, flows


# ----------------------------------------------------------------------
# Hypothesis strategies and tests (derandomized for CI stability)
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    @st.composite
    def topologies(draw):
        n_links = draw(st.integers(1, 6))
        links = [
            Link(f"l{i}", draw(st.floats(1.0, 1000.0))) for i in range(n_links)
        ]
        n_flows = draw(st.integers(1, 12))
        flows = []
        for i in range(n_flows):
            k = draw(st.integers(1, n_links))
            idx = draw(
                st.lists(
                    st.integers(0, n_links - 1), min_size=k, max_size=k, unique=True
                )
            )
            cap = draw(
                st.one_of(st.none(), st.floats(0.5, 500.0))
            )
            flows.append(Flow([links[j] for j in idx], 100.0, event=None, cap=cap))
        return links, flows

else:  # pragma: no cover - placeholder so decorators below still bind

    def topologies():
        return None


@needs_hypothesis
@given(topologies())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_feasibility(topo):
    links, flows = topo
    rates = maxmin_rates(flows)
    check_feasibility(links, flows, rates)


@needs_hypothesis
@given(topologies())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_work_conservation(topo):
    _links, flows = topo
    check_work_conservation(flows, maxmin_rates(flows))


@needs_hypothesis
@given(topologies())
@settings(max_examples=150, deadline=None, derandomize=True)
def test_maxmin_optimality_pairwise(topo):
    """A flow below its cap is blocked only by links where it already
    receives at least as much as every other flow could give up --
    i.e. raising it would hurt someone no better off."""
    links, flows = topo
    rates = maxmin_rates(flows)
    for f in flows:
        if rates[f] >= f.cap * (1 - EPS):
            continue
        saturated = [
            lnk
            for lnk in f.links
            if link_usage(lnk, flows, rates) >= lnk.capacity * (1 - EPS)
        ]
        assert saturated
        # On some saturated link, no coexisting flow has a higher rate
        # it could cede without becoming worse off than f.
        ok = False
        for lnk in saturated:
            sharers = [g for g in flows if lnk in g.links and g is not f]
            if all(rates[g] <= rates[f] * (1 + 1e-3) for g in sharers):
                ok = True
                break
        assert ok, f"{f} could be raised at the expense of better-off flows"


@needs_hypothesis
@given(topologies())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_matches_reference_implementation_exactly(topo):
    _links, flows = topo
    check_reference_equivalence(flows)


@needs_hypothesis
@given(topologies(), st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None, derandomize=True)
def test_permutation_invariance(topo, rng):
    """Rates do not depend on flow arrival order (up to float rounding:
    a permutation reorders the capacity subtractions within an
    iteration, so equality is tight-approximate rather than bitwise)."""
    _links, flows = topo
    baseline = dict(maxmin_rates(flows))
    shuffled = list(flows)
    rng.shuffle(shuffled)
    permuted = maxmin_rates(shuffled)
    for f in flows:
        assert permuted[f] == pytest.approx(baseline[f], rel=1e-9, abs=1e-9)


@needs_hypothesis
@given(
    capacity=st.floats(10.0, 1000.0),
    n=st.integers(1, 20),
)
@settings(max_examples=100, deadline=None, derandomize=True)
def test_single_link_equal_split(capacity, n):
    link = Link("l", capacity)
    flows = [Flow([link], 1.0, event=None) for _ in range(n)]
    rates = maxmin_rates(flows)
    for f in flows:
        assert rates[f] == pytest.approx(capacity / n, rel=1e-6)


@needs_hypothesis
@given(
    capacity=st.floats(10.0, 100.0),
    caps=st.lists(st.floats(0.1, 50.0), min_size=2, max_size=8),
)
@settings(max_examples=100, deadline=None, derandomize=True)
def test_total_throughput_never_exceeds_demand_or_capacity(capacity, caps):
    link = Link("l", capacity)
    flows = [Flow([link], 1.0, event=None, cap=c) for c in caps]
    rates = maxmin_rates(flows)
    total = sum(rates.values())
    assert total <= capacity * (1 + EPS)
    assert total <= sum(caps) * (1 + EPS)
    # Work conserving: total equals the binding constraint.
    assert total == pytest.approx(min(capacity, sum(caps)), rel=1e-5)


# ----------------------------------------------------------------------
# Seeded-random fallback sweep: the same invariants with no Hypothesis
# dependency, always-on.
# ----------------------------------------------------------------------
class TestSeededRandomSweep:
    SEED = 20260807
    ROUNDS = 150

    def test_invariants_and_reference_equivalence(self):
        rng = random.Random(self.SEED)
        for _ in range(self.ROUNDS):
            links, flows = random_topology(rng)
            check_reference_equivalence(flows)
            rates = maxmin_rates(flows)
            check_feasibility(links, flows, rates)
            check_work_conservation(flows, rates)

    def test_sweep_is_deterministic(self):
        """The fallback generator itself must be replayable."""
        def draw():
            rng = random.Random(self.SEED)
            links, flows = random_topology(rng)
            return [lnk.capacity for lnk in links], [(f.cap, len(f.links)) for f in flows]

        assert draw() == draw()
