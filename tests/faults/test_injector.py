"""Injector mechanics: arming, applying, skipping, and invariance."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.configuration import Configuration
from repro.experiments.harness import SimCluster
from repro.faults import Fault, FaultInjector, FaultPlan
from repro.mapreduce.jobspec import JobSpec, WorkloadProfile
from repro.workloads.datasets import DatasetSpec

MB = 1024**2


def small_cluster(seed=0, ft=None):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
        fault_tolerance=ft,
    )


def small_spec(sc, blocks=8, reducers=4, slowstart=0.05):
    DatasetSpec("tiny", num_blocks=blocks).load(sc.hdfs, "/in")
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=0.0, partition_skew=0.0,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    return JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=reducers,
        base_config=Configuration(), slowstart=slowstart,
    )


class TestArming:
    def test_empty_plan_keeps_run_bit_identical(self):
        # Arming an empty plan must not start failure detection or touch
        # any RNG stream: the run replays the fault-free one exactly.
        plain = small_cluster(seed=3)
        ra = plain.run_job(small_spec(plain))

        armed = small_cluster(seed=3)
        armed.inject_faults(plan=FaultPlan())
        rb = armed.run_job(small_spec(armed))

        assert ra.duration == rb.duration
        assert ra.counters.snapshot() == rb.counters.snapshot()

    def test_double_injection_rejected(self):
        sc = small_cluster()
        sc.inject_faults(plan=FaultPlan())
        with pytest.raises(RuntimeError, match="already injected"):
            sc.inject_faults(plan=FaultPlan())

    def test_injector_restart_rejected(self):
        sc = small_cluster()
        inj = FaultInjector(sc.sim, sc.cluster, sc.node_managers, sc.rm, FaultPlan())
        inj.start()
        with pytest.raises(RuntimeError, match="already started"):
            inj.start()

    def test_generated_plan_is_seed_deterministic(self):
        plans = [
            small_cluster(seed=9).inject_faults(
                crashes=1, container_kills=2, horizon=50.0
            )
            for _ in range(2)
        ]
        assert plans[0] == plans[1]


class TestApplication:
    def test_crash_kills_node_and_is_logged(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=5.0, kind="node_crash", node_id=1),))
        sc.inject_faults(plan=plan)
        sc.sim.run(until=6.0)
        assert not sc.cluster.node(1).alive
        assert len(sc.fault_injector.applied) == 1

    def test_faults_on_dead_node_are_skipped(self):
        sc = small_cluster()
        plan = FaultPlan(
            (
                Fault(time=5.0, kind="node_crash", node_id=1),
                Fault(time=8.0, kind="degrade", node_id=1, cpu_factor=0.5),
                Fault(time=9.0, kind="container_kill", node_id=1),
            )
        )
        sc.inject_faults(plan=plan)
        sc.sim.run(until=10.0)
        assert len(sc.fault_injector.applied) == 1
        assert len(sc.fault_injector.skipped) == 2

    def test_degrade_rescales_node(self):
        sc = small_cluster()
        nominal = sc.cluster.node(2).cpu_link.capacity
        plan = FaultPlan(
            (Fault(time=2.0, kind="degrade", node_id=2, cpu_factor=0.5),)
        )
        sc.inject_faults(plan=plan)
        sc.sim.run(until=3.0)
        assert sc.cluster.node(2).cpu_link.capacity == pytest.approx(0.5 * nominal)

    def test_rm_declares_crashed_node_lost_after_expiry(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=5.0, kind="node_crash", node_id=0),))
        sc.inject_faults(plan=plan)
        sc.sim.run(until=6.0)
        assert not sc.rm.is_node_lost(0)  # silence not yet past expiry
        sc.sim.run(until=30.0)
        assert sc.rm.is_node_lost(0)
        assert sc.node_managers[0].decommissioned
