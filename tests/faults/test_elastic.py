"""Elastic cluster churn end to end: decommission, join, spot preempt.

Timing anchors (fault-free, seed 0, 4 slaves, 8 maps / 4 reduces):
maps run ~0.5-23s, reduces ~23-67s, and every node hosts both kinds,
so churn events pinned inside those windows reliably hit live work.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.configuration import Configuration
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.faults import ElasticCluster, Fault, FaultPlan
from repro.mapreduce.counters import Counter
from repro.mapreduce.jobspec import JobSpec, TaskId, TaskType, WorkloadProfile
from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.statistics import NodeStats, TaskStats, UtilizationTimeline
from repro.sim.engine import Simulator
from repro.testing import assert_no_output_leaks
from repro.workloads.datasets import DatasetSpec
from repro.yarn.app_master import FaultToleranceSettings, SpeculationSettings

MB = 1024**2


def small_cluster(seed=0, ft=None):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
        fault_tolerance=ft or FaultToleranceSettings(),
    )


def small_spec(sc, blocks=8, reducers=4, slowstart=0.05):
    DatasetSpec("tiny", num_blocks=blocks).load(sc.hdfs, "/in")
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=0.0, partition_skew=0.0,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    return JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=reducers,
        base_config=Configuration(), slowstart=slowstart,
    )


def run_with_faults(sc, plan, max_events=10_000_000, **spec_kw):
    sc.inject_faults(plan=plan)
    am = sc.submit(small_spec(sc, **spec_kw))
    result = sc.sim.run_until_complete(am.completion, max_events=max_events)
    return am, result


class TestDecommission:
    def test_graceful_drain_kills_nothing(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=30.0, kind="node_decommission", node_id=2),))
        am, result = run_with_faults(sc, plan)
        assert result.succeeded
        # Graceful: running work finishes, nothing is ever killed.
        assert result.counters[Counter.KILLED_TASK_ATTEMPTS] == 0
        assert result.failure_reasons.get("preempted", 0) == 0
        elastic = sc.fault_injector.elastic
        assert elastic.departed == [(2, "decommission")]
        node = sc.cluster.node(2)
        assert node.departed and not node.alive
        assert sc.rm.is_node_lost(2)
        assert_no_output_leaks(sc.hdfs)

    def test_no_new_work_lands_after_drain(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=30.0, kind="node_decommission", node_id=2),))
        _, result = run_with_faults(sc, plan)
        for s in result.stats_of(TaskType.REDUCE):
            if s.node_id == 2:
                assert s.start_time <= 30.0
        assert result.succeeded

    def test_idle_node_departs_immediately(self):
        # At t=0 nothing has launched yet: zero running containers means
        # the drain completes on the spot instead of waiting for work.
        sc = small_cluster()
        plan = FaultPlan((Fault(time=0.0, kind="node_decommission", node_id=3),))
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert sc.fault_injector.elastic.departed == [(3, "decommission")]
        # The whole job ran on the surviving three nodes.
        for s in result.stats_of(TaskType.MAP) + result.stats_of(TaskType.REDUCE):
            assert s.node_id != 3


class TestJoin:
    def test_new_node_registers_and_takes_work(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=1.0, kind="node_join", node_id=0),))
        # Enough blocks that the original four nodes stay saturated and
        # the scheduler has real queue pressure to spill onto the newcomer.
        _, result = run_with_faults(sc, plan, blocks=24)
        assert result.succeeded
        # Ids are sequential: a 4-slave cluster's newcomer is node 4.
        assert len(sc.cluster.nodes) == 5
        newcomer = sc.cluster.node(4)
        assert newcomer.alive and not newcomer.departed
        assert newcomer.rack == sc.cluster.node(0).rack
        assert 4 in sc.node_managers
        assert sc.fault_injector.elastic.joined == [4]
        # A node that joined before the map phase ended really ran tasks.
        assert any(
            s.node_id == 4 and not s.failed
            for s in result.stats_of(TaskType.MAP) + result.stats_of(TaskType.REDUCE)
        )

    def test_join_then_decommission_the_newcomer(self):
        sc = small_cluster()
        plan = FaultPlan(
            (
                Fault(time=1.0, kind="node_join", node_id=0),
                Fault(time=40.0, kind="node_decommission", node_id=4),
            )
        )
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert sc.fault_injector.elastic.joined == [4]
        assert (4, "decommission") in sc.fault_injector.elastic.departed


class TestSpotPreempt:
    def test_grace_window_migration(self):
        # A preemption notice mid-reduce: the AM must migrate the doomed
        # attempts during the grace window and the job must not need a
        # crash-style re-execution afterwards.
        ft = FaultToleranceSettings(speculation=SpeculationSettings())
        sc = small_cluster(ft=ft)
        plan = FaultPlan(
            (Fault(time=30.0, kind="spot_preempt", node_id=1, duration=6.0),)
        )
        am, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert am.preempt_migrations >= 1
        assert result.counters[Counter.KILLED_TASK_ATTEMPTS] >= 1
        assert sc.fault_injector.elastic.departed == [(1, "spot_preempt")]
        assert result.failure_reasons.get("preempted", 0) >= 1
        assert_no_output_leaks(sc.hdfs)

    def test_migrated_attempts_survive_the_kill(self):
        ft = FaultToleranceSettings(speculation=SpeculationSettings())
        sc = small_cluster(ft=ft)
        plan = FaultPlan(
            (Fault(time=30.0, kind="spot_preempt", node_id=1, duration=6.0),)
        )
        _, result = run_with_faults(sc, plan)
        # Every reduce output exists despite the reclaimed node.
        ok_reds = [s for s in result.stats_of(TaskType.REDUCE) if not s.failed]
        assert len(ok_reds) == 4
        assert len(sc.hdfs.list_prefix("/out/")) == 4
        # Winners that started after the notice cannot be on the doomed node.
        for s in ok_reds:
            if s.start_time > 30.0:
                assert s.node_id != 1


class TestPreemptEdges:
    """Grace-window edge cases, driven directly on the elastic manager."""

    def elastic(self, sc):
        return ElasticCluster(sc.sim, sc.cluster, sc.node_managers, sc.rm)

    def test_notice_with_zero_running_containers(self):
        # No job: the notice drains an idle node and the kill reclaims it
        # at the deadline without ever killing anything.
        sc = small_cluster()
        el = self.elastic(sc)
        assert el.preempt_notice(1, grace=2.0)
        nm = sc.node_managers[1]
        assert nm.draining and not sc.cluster.node(1).departed
        sc.sim.run(until=5.0)
        assert sc.cluster.node(1).departed
        assert el.departed == [(1, "spot_preempt")]
        assert nm.kills == {}  # nothing was running, nothing was killed

    def test_back_to_back_notices_on_same_node(self):
        sc = small_cluster()
        el = self.elastic(sc)
        assert el.preempt_notice(2, grace=3.0)
        assert not el.preempt_notice(2, grace=1.0)  # already under notice
        sc.sim.run(until=10.0)
        # Only one reclaim happened, and a post-departure notice is moot.
        assert el.departed == [(2, "spot_preempt")]
        assert not el.preempt_notice(2, grace=1.0)

    def test_notice_on_draining_node_refused(self):
        sc = small_cluster()
        el = self.elastic(sc)
        assert el.decommission(3)  # idle: departs immediately
        assert not el.preempt_notice(3, grace=1.0)
        assert el.departed == [(3, "decommission")]

    def test_kill_is_moot_if_node_crashed_during_grace(self):
        sc = small_cluster()
        el = self.elastic(sc)
        assert el.preempt_notice(0, grace=4.0)
        sc.cluster.node(0).fail()  # crash inside the grace window
        sc.sim.run(until=10.0)
        # The reclaim found a corpse: no departure is recorded.
        assert el.departed == []
        assert not sc.cluster.node(0).departed


class TestBlacklistEscapeAfterDecommission:
    def test_fully_blacklisted_shrunk_cluster_still_schedules(self):
        # Threshold 1 + a kill on three nodes blacklists them; the fourth
        # then decommissions, so the only schedulable nodes are all
        # blacklisted.  The escape hatch must work over the *live* set.
        ft = FaultToleranceSettings(blacklist_threshold=1)
        sc = small_cluster(ft=ft)
        plan = FaultPlan(
            (
                Fault(time=26.0, kind="container_kill", node_id=0),
                Fault(time=27.0, kind="container_kill", node_id=1),
                Fault(time=28.0, kind="container_kill", node_id=2),
                Fault(time=30.0, kind="node_decommission", node_id=3),
            )
        )
        am, result = run_with_faults(sc, plan)
        assert am.blacklisted_nodes >= {0, 1, 2}
        assert (3, "decommission") in sc.fault_injector.elastic.departed
        assert result.succeeded
        assert_no_output_leaks(sc.hdfs)


class TestMonitorUnderChurn:
    """Satellite: utilization aggregation stays correct as membership moves."""

    def monitor(self):
        return CentralMonitor(Simulator())

    def sample(self, mon, node_id, time, cpu):
        mon.on_node_stats(
            NodeStats(
                node_id=node_id, time=time, cpu_utilization=cpu,
                memory_utilization=cpu, running_containers=1,
            )
        )

    def test_departed_node_capped_at_departure(self):
        mon = self.monitor()
        # Node 0 holds 1.0 throughout; node 1 holds 1.0 then departs at
        # t=10 -- its post-departure ghost samples must not count.
        for t in (0.0, 5.0, 10.0):
            self.sample(mon, 0, t, 1.0)
            self.sample(mon, 1, t, 1.0)
        mon.on_capacity_change(1, "depart", 10.0)
        self.sample(mon, 1, 20.0, 0.0)  # stale ghost sample
        assert mon.mean_cpu_utilization(since=0.0) == pytest.approx(1.0)

    def test_node_departed_before_window_excluded(self):
        mon = self.monitor()
        self.sample(mon, 0, 0.0, 0.0)
        self.sample(mon, 0, 50.0, 0.0)
        self.sample(mon, 1, 0.0, 1.0)
        mon.on_capacity_change(1, "depart", 5.0)
        # Window opens after node 1 left: only node 0's zeros remain.
        assert mon.mean_cpu_utilization(since=10.0) == pytest.approx(0.0)
        # Window spanning the departure still sees node 1's contribution.
        assert mon.mean_cpu_utilization(since=0.0) > 0.0

    def test_joined_node_widens_the_denominator(self):
        mon = self.monitor()
        self.sample(mon, 0, 0.0, 1.0)
        self.sample(mon, 0, 20.0, 1.0)
        mon.on_capacity_change(4, "join", 10.0)
        self.sample(mon, 4, 10.0, 0.0)
        self.sample(mon, 4, 20.0, 0.0)
        assert mon.joined_nodes == {4: 10.0}
        assert mon.mean_cpu_utilization(since=0.0) == pytest.approx(0.5)

    def test_hot_nodes_skips_departed(self):
        mon = self.monitor()
        self.sample(mon, 0, 1.0, 0.95)
        self.sample(mon, 1, 1.0, 0.97)
        mon.on_capacity_change(1, "depart", 2.0)
        assert mon.hot_nodes(cpu_threshold=0.9) == [0]

    def test_timeline_until_caps_the_window(self):
        tl = UtilizationTimeline()
        for t, v in ((0.0, 1.0), (10.0, 1.0), (20.0, 0.0), (30.0, 0.0)):
            tl.add(t, v)
        assert tl.mean(since=0.0, until=10.0) == pytest.approx(1.0)
        assert tl.mean(since=0.0) < 1.0

    def test_end_to_end_monitor_survives_churn(self):
        # Real run with monitors on: churn must not corrupt aggregation
        # (denominator tracks live membership, means stay in [0, 1]).
        sc = SimCluster(
            seed=0,
            cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
            fault_tolerance=FaultToleranceSettings(
                speculation=SpeculationSettings()
            ),
        )
        plan = FaultPlan(
            (
                Fault(time=1.0, kind="node_join", node_id=0),
                Fault(time=25.0, kind="node_decommission", node_id=2),
                Fault(time=30.0, kind="spot_preempt", node_id=1, duration=6.0),
            )
        )
        am, result = run_with_faults(sc, plan)
        assert result.succeeded
        mon = sc.monitor
        assert set(mon.departed_nodes) == {1, 2}
        assert set(mon.joined_nodes) == {4}
        for since in (0.0, 20.0, 40.0):
            assert 0.0 <= mon.mean_cpu_utilization(since=since) <= 1.0
            assert 0.0 <= mon.mean_memory_utilization(since=since) <= 1.0


class TestTunerCapacityAwareness:
    """Tentpole: capacity-shifted waves are excluded from the search."""

    def make_tuner(self):
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(
                hill_climb=HillClimbSettings(m=2, n=2, global_search_limit=2),
                use_knowledge_base=False,
            ),
            rng=np.random.default_rng(0),
        )
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_output_noise=0.0, partition_skew=0.0,
            map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
        )
        spec = JobSpec(
            name="t", workload=profile, input_path="/in", num_reducers=4,
            base_config=Configuration(),
        )
        tuner.attach_job(spec)
        return tuner, spec

    def test_stats_capacity_shifted_window(self):
        tuner, _ = self.make_tuner()
        tuner.note_capacity_change(50.0)

        def mk(s, e):
            return TaskStats(
                task_id=TaskId("job_0001", TaskType.MAP, 0),
                task_type=TaskType.MAP, node_id=0, attempt=1, config={},
                start_time=s, end_time=e, cpu_seconds=1.0, allocated_cores=1.0,
                working_set_bytes=MB, container_memory_bytes=MB,
            )
        assert tuner._stats_capacity_shifted(mk(40.0, 60.0))
        assert tuner._stats_capacity_shifted(mk(50.0, 50.0))
        assert not tuner._stats_capacity_shifted(mk(0.0, 49.9))
        assert not tuner._stats_capacity_shifted(mk(50.1, 70.0))

    def test_capacity_change_flags_open_searches_and_reclamps(self):
        from repro.core import parameters as P

        tuner, spec = self.make_tuner()
        state = tuner._jobs[spec.job_id].search_states[TaskType.REDUCE]
        assert not state.capacity_shifted
        tuner.note_capacity_change(12.0, live_nodes=3)
        assert state.capacity_shifted
        assert any(
            "capacity change at t=12.0" in line for line in state.rule_log
        )
        # The running config steps down to the live fan-out ceiling.
        cfg = tuner.configurator.job_config(spec.job_id)
        assert float(cfg[P.SHUFFLE_PARALLELCOPIES]) <= 3.0

    def test_shifted_wave_rolls_back_instead_of_scoring(self):
        tuner, spec = self.make_tuner()
        state = tuner._jobs[spec.job_id].search_states[TaskType.MAP]
        state.admitted = 1000
        index = 0
        for wave, shifted in ((1, False), (2, True)):
            if shifted:
                tuner.note_capacity_change(5.0, live_nodes=3)
            for sample in list(state.climber.pending_samples()):
                tid = TaskId(spec.job_id, TaskType.MAP, index)
                state.bindings[str(tid)] = sample.sample_id
                tuner.on_task_stats(TaskStats(
                    task_id=tid, task_type=TaskType.MAP, node_id=0, attempt=0,
                    config={}, start_time=0.0, end_time=10.0 + index,
                    cpu_seconds=5.0, allocated_cores=1.0,
                    working_set_bytes=100 * MB,
                    container_memory_bytes=200 * MB, wave=wave,
                ))
                index += 1
        assert any(
            "capacity-shifted" in line for line in state.rule_log
        )
        assert not state.capacity_shifted  # cleared after the void
        assert state.climber.pending_samples()  # search re-proposed

    def test_tuned_job_survives_full_churn(self):
        # Integration: aggressive tuning + decommission + join + preempt.
        sc = SimCluster(
            seed=3,
            cluster_spec=ClusterSpec(num_slaves=6, racks=(3, 3)),
            start_monitors=False,
            fault_tolerance=FaultToleranceSettings(
                speculation=SpeculationSettings()
            ),
        )
        sc.inject_faults(decommissions=1, joins=1, spot_preempts=1, horizon=35.0)
        DatasetSpec("d", num_blocks=24).load(sc.hdfs, "/in")
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_output_noise=0.02, partition_skew=0.1,
            map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
        )
        spec = JobSpec(
            name="t", workload=profile, input_path="/in", num_reducers=8
        )
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(
                hill_climb=HillClimbSettings(m=4, n=4, global_search_limit=2),
                use_knowledge_base=False,
            ),
            rng=np.random.default_rng(0),
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion, max_events=40_000_000)
        assert result.succeeded
        # The churn reached the tuner as capacity-change notifications.
        assert tuner._capacity_changes
        logs = [
            line
            for state in tuner._jobs[spec.job_id].search_states.values()
            for line in state.rule_log
        ]
        assert any("capacity change at t=" in line for line in logs)
        assert_no_output_leaks(sc.hdfs)
