"""Fault-injection determinism across process-pool worker counts.

Fault scenarios travel inside :class:`RunRequest` as declarative knobs
and the plan is regenerated worker-side from the dedicated
``("faults", "plan")`` RNG stream, so a faulted run must hash
identically no matter how the requests are spread over workers.
"""

from repro.experiments.parallel import (
    RunRequest,
    combined_digest,
    run_requests,
)

FAULT_KNOBS = {"crashes": 1, "container_kills": 2, "degraded": 1, "horizon": 35.0}


def faulted_request(tuning="none"):
    return RunRequest.build(
        "terasort", 1, num_blocks=8, num_reducers=4, tuning=tuning, faults=FAULT_KNOBS
    )


class TestFaultDigest:
    def test_serial_matches_pool(self):
        requests = [faulted_request()]
        serial = run_requests(requests, max_workers=1)
        pooled = run_requests(requests, max_workers=4)
        assert combined_digest(serial) == combined_digest(pooled)

    def test_outcome_records_scenario_and_recovery(self):
        (outcome,) = run_requests([faulted_request()], max_workers=1)
        assert outcome.succeeded
        assert outcome.killed_attempts >= 1
        assert outcome.injected_faults  # the plan is part of the digest
        assert dict(outcome.failure_reasons)

    def test_fault_knobs_change_the_digest(self):
        plain = RunRequest.build("terasort", 1, num_blocks=8, num_reducers=4)
        (a,) = run_requests([plain], max_workers=1)
        (b,) = run_requests([faulted_request()], max_workers=1)
        assert a.digest() != b.digest()


NETWORK_KNOBS = {
    "link_flaky": 1,
    "rack_partitions": 1,
    "link_degraded": 1,
    "horizon": 35.0,
}

#: Recorded from the network-fault scenario above (terasort, seed 1,
#: 8 blocks / 4 reducers).  If it moves, a change altered the per-fetch
#: recovery path's simulated behaviour -- fix it or re-record in a
#: dedicated commit that says so.
NETWORK_FAULT_DIGEST = (
    "ccf9c4baf5b2ac219cf561bb6e04538866ba0589bc907c36f19323fe9c1074ab"
)


def network_request(tuning="none"):
    return RunRequest.build(
        "terasort", 1, num_blocks=8, num_reducers=4, tuning=tuning,
        faults=NETWORK_KNOBS,
    )


class TestNetworkFaultDigest:
    def test_serial_matches_pool(self):
        requests = [network_request()]
        serial = run_requests(requests, max_workers=1)
        pooled = run_requests(requests, max_workers=4)
        assert combined_digest(serial) == combined_digest(pooled)

    def test_pinned_digest(self):
        (outcome,) = run_requests([network_request()], max_workers=1)
        assert outcome.succeeded
        assert outcome.digest() == NETWORK_FAULT_DIGEST

    def test_plan_replay_matches_knob_generation(self):
        """A ("plan", json) request replays the knob-generated scenario
        exactly (everything but the request itself is identical)."""
        from dataclasses import replace

        from repro.cluster.topology import ClusterSpec
        from repro.faults import generate_fault_plan, plan_to_json
        from repro.sim.rng import RngRegistry

        plan = generate_fault_plan(
            RngRegistry(1).stream("faults", "plan"),
            num_nodes=ClusterSpec().num_slaves,
            horizon=35.0,
            link_degraded=1,
            link_flaky=1,
            rack_partitions=1,
        )
        replay = RunRequest.build(
            "terasort", 1, num_blocks=8, num_reducers=4,
            faults={"plan": plan_to_json(plan)},
        )
        (from_knobs,) = run_requests([network_request()], max_workers=1)
        (from_plan,) = run_requests([replay], max_workers=1)
        assert from_plan.injected_faults == from_knobs.injected_faults
        # Same run in every respect but the request encoding.
        assert replace(from_plan, request=from_knobs.request) == from_knobs
