"""Fault-injection determinism across process-pool worker counts.

Fault scenarios travel inside :class:`RunRequest` as declarative knobs
and the plan is regenerated worker-side from the dedicated
``("faults", "plan")`` RNG stream, so a faulted run must hash
identically no matter how the requests are spread over workers.
"""

from repro.experiments.parallel import (
    RunRequest,
    combined_digest,
    run_requests,
)

FAULT_KNOBS = {"crashes": 1, "container_kills": 2, "degraded": 1, "horizon": 35.0}


def faulted_request(tuning="none"):
    return RunRequest.build(
        "terasort", 1, num_blocks=8, num_reducers=4, tuning=tuning, faults=FAULT_KNOBS
    )


class TestFaultDigest:
    def test_serial_matches_pool(self):
        requests = [faulted_request()]
        serial = run_requests(requests, max_workers=1)
        pooled = run_requests(requests, max_workers=4)
        assert combined_digest(serial) == combined_digest(pooled)

    def test_outcome_records_scenario_and_recovery(self):
        (outcome,) = run_requests([faulted_request()], max_workers=1)
        assert outcome.succeeded
        assert outcome.killed_attempts >= 1
        assert outcome.injected_faults  # the plan is part of the digest
        assert dict(outcome.failure_reasons)

    def test_fault_knobs_change_the_digest(self):
        plain = RunRequest.build("terasort", 1, num_blocks=8, num_reducers=4)
        (a,) = run_requests([plain], max_workers=1)
        (b,) = run_requests([faulted_request()], max_workers=1)
        assert a.digest() != b.digest()


NETWORK_KNOBS = {
    "link_flaky": 1,
    "rack_partitions": 1,
    "link_degraded": 1,
    "horizon": 35.0,
}

#: Recorded from the network-fault scenario above (terasort, seed 1,
#: 8 blocks / 4 reducers).  If it moves, a change altered the per-fetch
#: recovery path's simulated behaviour -- fix it or re-record in a
#: dedicated commit that says so.
NETWORK_FAULT_DIGEST = (
    "ccf9c4baf5b2ac219cf561bb6e04538866ba0589bc907c36f19323fe9c1074ab"
)


def network_request(tuning="none"):
    return RunRequest.build(
        "terasort", 1, num_blocks=8, num_reducers=4, tuning=tuning,
        faults=NETWORK_KNOBS,
    )


class TestNetworkFaultDigest:
    def test_serial_matches_pool(self):
        requests = [network_request()]
        serial = run_requests(requests, max_workers=1)
        pooled = run_requests(requests, max_workers=4)
        assert combined_digest(serial) == combined_digest(pooled)

    def test_pinned_digest(self):
        (outcome,) = run_requests([network_request()], max_workers=1)
        assert outcome.succeeded
        assert outcome.digest() == NETWORK_FAULT_DIGEST

    def test_plan_replay_matches_knob_generation(self):
        """A ("plan", json) request replays the knob-generated scenario
        exactly (everything but the request itself is identical)."""
        from dataclasses import replace

        from repro.cluster.topology import ClusterSpec
        from repro.faults import generate_fault_plan, plan_to_json
        from repro.sim.rng import RngRegistry

        plan = generate_fault_plan(
            RngRegistry(1).stream("faults", "plan"),
            num_nodes=ClusterSpec().num_slaves,
            horizon=35.0,
            link_degraded=1,
            link_flaky=1,
            rack_partitions=1,
        )
        replay = RunRequest.build(
            "terasort", 1, num_blocks=8, num_reducers=4,
            faults={"plan": plan_to_json(plan)},
        )
        (from_knobs,) = run_requests([network_request()], max_workers=1)
        (from_plan,) = run_requests([replay], max_workers=1)
        assert from_plan.injected_faults == from_knobs.injected_faults
        # Same run in every respect but the request encoding.
        assert replace(from_plan, request=from_knobs.request) == from_knobs


ELASTIC_KNOBS = {
    "decommissions": 1,
    "joins": 1,
    "spot_preempts": 1,
    "horizon": 35.0,
}

DENSE_ELASTIC_KNOBS = {
    "decommissions": 2,
    "joins": 1,
    "spot_preempts": 3,
    "horizon": 35.0,
}

#: Recorded from the elastic-churn scenarios below (terasort, seed 1;
#: sparse = 8 blocks / 4 reducers, dense = 24 blocks / 8 reducers).
#: If one moves, a change altered decommission draining, mid-run node
#: registration, or the preempt grace-window migration path -- fix it
#: or re-record in a dedicated commit that says so.
ELASTIC_SPARSE_DIGEST = (
    "2aeaeabac1177c12b7ec6753b6ab6cc62d3df1d9a57adb8bf300ef031babaca6"
)
ELASTIC_DENSE_DIGEST = (
    "6bf44f9ca5a989be48cc379899cc18beeaba78197080e5c8e43debca44c76c19"
)


def elastic_requests():
    sparse = RunRequest.build(
        "terasort", 1, num_blocks=8, num_reducers=4, faults=ELASTIC_KNOBS
    )
    dense = RunRequest.build(
        "terasort", 1, num_blocks=24, num_reducers=8,
        faults=DENSE_ELASTIC_KNOBS,
    )
    return [sparse, dense]


class TestElasticFaultDigest:
    def test_serial_matches_pool(self):
        requests = elastic_requests()
        serial = run_requests(requests, max_workers=1)
        pooled = run_requests(requests, max_workers=4)
        assert combined_digest(serial) == combined_digest(pooled)

    def test_pinned_digests(self):
        sparse, dense = run_requests(elastic_requests(), max_workers=1)
        assert sparse.succeeded
        assert sparse.digest() == ELASTIC_SPARSE_DIGEST
        assert dense.succeeded
        assert dense.digest() == ELASTIC_DENSE_DIGEST

    def test_dense_churn_exercises_preemption(self):
        """The dense scenario reclaims nodes with work running: attempts
        are killed, yet every reduce commits and the job succeeds."""
        (_, dense) = run_requests(elastic_requests(), max_workers=1)
        assert dense.succeeded
        assert dense.killed_attempts >= 1
        assert dict(dense.failure_reasons).get("preempted", 0) >= 1
        assert len(dense.injected_faults) == 6
