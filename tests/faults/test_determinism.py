"""Fault-injection determinism across process-pool worker counts.

Fault scenarios travel inside :class:`RunRequest` as declarative knobs
and the plan is regenerated worker-side from the dedicated
``("faults", "plan")`` RNG stream, so a faulted run must hash
identically no matter how the requests are spread over workers.
"""

from repro.experiments.parallel import (
    RunRequest,
    combined_digest,
    run_requests,
)

FAULT_KNOBS = {"crashes": 1, "container_kills": 2, "degraded": 1, "horizon": 35.0}


def faulted_request(tuning="none"):
    return RunRequest.build(
        "terasort", 1, num_blocks=8, num_reducers=4, tuning=tuning, faults=FAULT_KNOBS
    )


class TestFaultDigest:
    def test_serial_matches_pool(self):
        requests = [faulted_request()]
        serial = run_requests(requests, max_workers=1)
        pooled = run_requests(requests, max_workers=4)
        assert combined_digest(serial) == combined_digest(pooled)

    def test_outcome_records_scenario_and_recovery(self):
        (outcome,) = run_requests([faulted_request()], max_workers=1)
        assert outcome.succeeded
        assert outcome.killed_attempts >= 1
        assert outcome.injected_faults  # the plan is part of the digest
        assert dict(outcome.failure_reasons)

    def test_fault_knobs_change_the_digest(self):
        plain = RunRequest.build("terasort", 1, num_blocks=8, num_reducers=4)
        (a,) = run_requests([plain], max_workers=1)
        (b,) = run_requests([faulted_request()], max_workers=1)
        assert a.digest() != b.digest()
