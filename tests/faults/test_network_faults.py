"""Network-fault model: plan validation, JSON round-trip, injection."""

import numpy as np
import pytest

from repro.cluster.node import FROZEN_CAPACITY
from repro.cluster.topology import ClusterSpec
from repro.experiments.harness import SimCluster
from repro.faults import (
    Fault,
    FaultPlan,
    NetworkFaultState,
    generate_fault_plan,
    plan_from_json,
    plan_to_json,
)


def small_cluster(seed=0):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
    )


class TestFaultValidation:
    def test_bad_net_factor_rejected(self):
        with pytest.raises(ValueError, match="net_factor"):
            Fault(time=1.0, kind="link_degrade", node_id=0, net_factor=0.0)
        with pytest.raises(ValueError, match="net_factor"):
            Fault(time=1.0, kind="link_degrade", node_id=0, net_factor=1.5)

    def test_link_flaky_needs_prob_and_duration(self):
        with pytest.raises(ValueError, match="fail_prob"):
            Fault(time=1.0, kind="link_flaky", node_id=0, duration=5.0)
        with pytest.raises(ValueError, match="duration"):
            Fault(time=1.0, kind="link_flaky", node_id=0, fail_prob=0.5)
        with pytest.raises(ValueError, match="fail_prob"):
            Fault(time=1.0, kind="link_flaky", node_id=0, fail_prob=1.0, duration=5.0)

    def test_rack_partition_needs_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Fault(time=1.0, kind="rack_partition", node_id=0)

    def test_negative_recover_time_rejected(self):
        with pytest.raises(ValueError, match="recover_time"):
            Fault(time=1.0, kind="degrade", node_id=0, recover_time=-1.0)


class TestDescribe:
    def test_legacy_describe_strings_unchanged(self):
        assert Fault(time=2.0, kind="node_crash", node_id=3).describe() == (
            "t=2.0s crash node 3"
        )
        assert Fault(time=2.0, kind="container_kill", node_id=3, count=2).describe() == (
            "t=2.0s kill 2 container(s) on node 3"
        )
        assert Fault(
            time=2.0, kind="degrade", node_id=3, cpu_factor=0.5, disk_factor=0.75
        ).describe() == "t=2.0s degrade node 3 (cpu x0.50, disk x0.75)"

    def test_degrade_recover_time_mentioned(self):
        text = Fault(
            time=2.0, kind="degrade", node_id=3, cpu_factor=0.5, recover_time=7.5
        ).describe()
        assert "recovers +7.5s" in text

    def test_network_kinds_described(self):
        assert "degrade link of node 1" in Fault(
            time=1.0, kind="link_degrade", node_id=1, net_factor=0.4
        ).describe()
        assert "flaky link on node 1" in Fault(
            time=1.0, kind="link_flaky", node_id=1, fail_prob=0.5, duration=5.0
        ).describe()
        assert "partition rack of node 1" in Fault(
            time=1.0, kind="rack_partition", node_id=1, duration=5.0
        ).describe()


class TestPlanProperties:
    def test_has_network_faults(self):
        legacy = FaultPlan((Fault(time=1.0, kind="node_crash", node_id=0),))
        assert not legacy.has_network_faults
        net = FaultPlan(
            (Fault(time=1.0, kind="link_flaky", node_id=0, fail_prob=0.5, duration=2.0),)
        )
        assert net.has_network_faults


class TestGeneration:
    def test_legacy_plans_unperturbed_by_new_knobs(self):
        # The network draws come strictly after every legacy draw, so a
        # legacy-knob plan is a prefix (as a set) of the extended plan
        # generated from the same stream state.
        legacy = generate_fault_plan(
            np.random.default_rng(7), num_nodes=8, horizon=100.0,
            crashes=1, container_kills=2, degraded=1,
        )
        extended = generate_fault_plan(
            np.random.default_rng(7), num_nodes=8, horizon=100.0,
            crashes=1, container_kills=2, degraded=1,
            link_degraded=1, link_flaky=1, rack_partitions=1,
        )
        legacy_kinds = {"node_crash", "container_kill", "degrade"}
        assert set(legacy.faults) == {
            f for f in extended.faults if f.kind in legacy_kinds
        }
        assert sum(1 for f in extended.faults if f.kind not in legacy_kinds) == 3

    def test_network_faults_avoid_crashed_nodes(self):
        plan = generate_fault_plan(
            np.random.default_rng(3), num_nodes=5, horizon=50.0,
            crashes=2, link_flaky=4, rack_partitions=2, link_degraded=3,
        )
        crashed = set(plan.crashed_nodes)
        for f in plan:
            if f.kind in ("link_degrade", "link_flaky", "rack_partition"):
                assert f.node_id not in crashed

    def test_same_seed_same_plan(self):
        kw = dict(num_nodes=6, horizon=40.0, link_flaky=2, rack_partitions=1)
        a = generate_fault_plan(np.random.default_rng(11), **kw)
        b = generate_fault_plan(np.random.default_rng(11), **kw)
        assert a == b


class TestJsonRoundTrip:
    def test_round_trip_is_identity(self):
        plan = generate_fault_plan(
            np.random.default_rng(5), num_nodes=8, horizon=60.0,
            crashes=1, container_kills=1, degraded=1,
            link_degraded=1, link_flaky=1, rack_partitions=1,
        )
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_defaults_elided_from_dump(self):
        plan = FaultPlan((Fault(time=1.0, kind="node_crash", node_id=0),))
        text = plan_to_json(plan)
        assert "cpu_factor" not in text and "net_factor" not in text

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault fields"):
            plan_from_json(
                '{"faults": [{"time": 1.0, "kind": "node_crash",'
                ' "node_id": 0, "bogus": 1}]}'
            )

    def test_bad_values_rejected_on_load(self):
        with pytest.raises(ValueError, match="fail_prob"):
            plan_from_json(
                '{"faults": [{"time": 1.0, "kind": "link_flaky",'
                ' "node_id": 0, "fail_prob": 2.0, "duration": 5.0}]}'
            )


class TestNetworkFaultState:
    def test_no_draws_outside_windows(self):
        rng = np.random.default_rng(0)
        state = NetworkFaultState(rng)
        state.add_flaky_window(1, start=10.0, end=20.0, fail_prob=0.9)
        before = rng.bit_generator.state
        assert state.draw_fetch_failure(0, 2, now=15.0) is False  # untouched nodes
        assert state.draw_fetch_failure(1, 2, now=25.0) is False  # window expired
        assert rng.bit_generator.state == before
        state.draw_fetch_failure(1, 2, now=15.0)  # inside: consumes the stream
        assert rng.bit_generator.state != before
        assert state.fetch_failures_drawn >= 0

    def test_overlapping_windows_combine(self):
        state = NetworkFaultState(np.random.default_rng(0))
        state.add_flaky_window(1, start=0.0, end=10.0, fail_prob=0.5)
        state.add_flaky_window(1, start=5.0, end=15.0, fail_prob=0.5)
        assert state.failure_prob(1, 7.0) == pytest.approx(0.75)
        assert state.failure_prob(1, 12.0) == pytest.approx(0.5)


class TestInjection:
    def test_link_degrade_rescales_and_recovers(self):
        sc = small_cluster()
        net = sc.cluster.network
        base_tx = net._tx[1].capacity
        plan = FaultPlan(
            (Fault(time=5.0, kind="link_degrade", node_id=1,
                   net_factor=0.25, recover_time=10.0),)
        )
        sc.inject_faults(plan=plan)
        sc.sim.run(until=6.0)
        assert net._tx[1].capacity == pytest.approx(0.25 * base_tx)
        assert net._rx[1].capacity == pytest.approx(0.25 * base_tx)
        sc.sim.run(until=16.0)
        assert net._tx[1].capacity == pytest.approx(base_tx)

    def test_rack_partition_freezes_uplink_then_heals(self):
        sc = small_cluster()
        net = sc.cluster.network
        rack = sc.cluster.nodes[0].rack
        base = net._uplink[rack].capacity
        plan = FaultPlan(
            (Fault(time=5.0, kind="rack_partition", node_id=0, duration=8.0),)
        )
        sc.inject_faults(plan=plan)
        sc.sim.run(until=6.0)
        assert net.rack_partitioned(rack)
        assert net._uplink[rack].capacity == FROZEN_CAPACITY
        sc.sim.run(until=14.0)
        assert not net.rack_partitioned(rack)
        assert net._uplink[rack].capacity == pytest.approx(base)

    def test_link_flaky_arms_fetch_state(self):
        sc = small_cluster()
        plan = FaultPlan(
            (Fault(time=5.0, kind="link_flaky", node_id=2,
                   fail_prob=0.5, duration=10.0),)
        )
        sc.inject_faults(plan=plan)
        assert sc.cluster.network.faults is not None  # armed before t=0
        sc.sim.run(until=6.0)
        assert sc.cluster.network.faults.failure_prob(2, 10.0) == pytest.approx(0.5)

    def test_legacy_plan_leaves_fetch_path_unarmed(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=5.0, kind="container_kill", node_id=0),))
        sc.inject_faults(plan=plan)
        assert sc.cluster.network.faults is None

    def test_node_crash_freezes_nic_in_network_mode(self):
        sc = small_cluster()
        net = sc.cluster.network
        plan = FaultPlan(
            (
                Fault(time=5.0, kind="node_crash", node_id=3),
                Fault(time=6.0, kind="link_flaky", node_id=1,
                      fail_prob=0.4, duration=5.0),
            )
        )
        sc.inject_faults(plan=plan)
        sc.sim.run(until=7.0)
        assert net._tx[3].capacity == FROZEN_CAPACITY

    def test_degrade_recover_time_restores_node(self):
        sc = small_cluster()
        node = sc.cluster.nodes[2]
        nominal = node.cpu_link.capacity
        plan = FaultPlan(
            (Fault(time=5.0, kind="degrade", node_id=2,
                   cpu_factor=0.5, disk_factor=0.5, recover_time=10.0),)
        )
        sc.inject_faults(plan=plan)
        sc.sim.run(until=6.0)
        assert node.cpu_link.capacity == pytest.approx(0.5 * nominal)
        sc.sim.run(until=16.0)
        assert node.cpu_link.capacity == pytest.approx(nominal)
