"""Control-plane faults: tuner crashes, monitor outages, stats gaps.

Covers the degraded-mode chain end to end: a mid-search tuner crash
voids the open wave, drops its queued trial configurations, pins the
job to the last-known-good configuration, releases gated tasks
untracked, and -- at the scheduled restart -- reopens the search from
the incumbent.  Monitor outages and per-node stats gaps black out
sample ingestion without poisoning the rule windows.
"""

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.core.configuration import Configuration
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.faults import ControlPlaneState, Fault, FaultPlan
from repro.faults.control import ControlPlaneState as DirectControlPlaneState
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.statistics import NodeStats
from repro.sim.engine import Simulator
from repro.telemetry.events import (
    MonitorOutage,
    StatsGap,
    TunerCrash,
    TunerRecovered,
)
from repro.testing import assert_no_output_leaks
from repro.workloads.datasets import DatasetSpec
from repro.yarn.app_master import FaultToleranceSettings

MB = 1024**2


def small_cluster(seed=0, start_monitors=False):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=start_monitors,
        fault_tolerance=FaultToleranceSettings(),
    )


def search_spec(sc, blocks=36, reducers=8):
    DatasetSpec("d", num_blocks=blocks).load(sc.hdfs, "/in")
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=0.02, partition_skew=0.1,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    return JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=reducers,
        base_config=Configuration(), slowstart=0.05,
    )


def make_tuner(strategy=TuningStrategy.AGGRESSIVE):
    return OnlineTuner(
        strategy,
        settings=TunerSettings(
            hill_climb=HillClimbSettings(m=4, n=4, global_search_limit=2),
            use_knowledge_base=False,
        ),
        rng=np.random.default_rng(0),
    )


def run_tuned(plan=None, strategy=TuningStrategy.AGGRESSIVE):
    sc = small_cluster()
    events = []
    sc.telemetry.subscribe(events.append, categories=("tuner", "fault"))
    if plan is not None:
        sc.inject_faults(plan=plan)
    spec = search_spec(sc)
    tuner = make_tuner(strategy)
    am = tuner.submit(sc, spec)
    result = sc.sim.run_until_complete(am.completion, max_events=40_000_000)
    return sc, tuner, spec, result, events


def crash_plan(time=80.0, duration=60.0):
    return FaultPlan(
        (Fault(time=time, kind="tuner_crash", node_id=0, duration=duration),)
    )


class TestTunerCrashEndToEnd:
    def test_mid_search_crash_degrades_recovers_and_job_succeeds(self):
        """The acceptance scenario: a crash lands mid-search (an
        incumbent exists), the open wave is voided, the job completes
        with every task successful, the search reopens at restart, and
        the final cost stays within a pinned bound of the fault-free
        incumbent."""
        _, tuner0, spec0, res0, _ = run_tuned()
        assert res0.succeeded
        base_costs = sum(
            st.climber.best_cost()
            for st in tuner0._jobs[spec0.job_id].search_states.values()
        )

        sc, tuner, spec, result, events = run_tuned(plan=crash_plan())
        assert result.succeeded
        assert all(not s.failed for s in result.task_stats if not s.speculative)

        crashes = [e for e in events if isinstance(e, TunerCrash)]
        recoveries = [e for e in events if isinstance(e, TunerRecovered)]
        assert len(crashes) == 1 and len(recoveries) == 1
        assert crashes[0].time == 80.0
        assert crashes[0].down_until == 140.0
        assert crashes[0].voided_waves >= 1
        assert recoveries[0].time == 140.0
        assert recoveries[0].downtime == 60.0
        assert recoveries[0].reopened_waves == crashes[0].voided_waves
        assert sc.telemetry.counters.get("faults.applied", 0) == 1
        assert not tuner.tuner_down()

        states = tuner._jobs[spec.job_id].search_states
        assert any(
            "voided by tuner crash" in line
            for st in states.values()
            for line in st.rule_log
        )
        # Every search still converges to a recommendation.
        assert all(st.search_done for st in states.values())
        crash_costs = sum(st.climber.best_cost() for st in states.values())
        # Pinned bound: losing one wave to the crash may cost some
        # search progress, but never more than 35% of the final cost.
        assert crash_costs <= base_costs * 1.35
        assert_no_output_leaks(sc.hdfs)

    def test_crash_before_incumbent_keeps_bootstrap_wave(self):
        """A crash during the initial sampling wave has nothing to roll
        back to: the queued samples keep draining (quarantined), and the
        job still completes with a finished search."""
        sc, tuner, spec, result, events = run_tuned(
            plan=crash_plan(time=1.0, duration=30.0)
        )
        assert result.succeeded
        crashes = [e for e in events if isinstance(e, TunerCrash)]
        assert len(crashes) == 1
        assert crashes[0].voided_waves == 0
        states = tuner._jobs[spec.job_id].search_states
        assert all(st.search_done for st in states.values())
        assert_no_output_leaks(sc.hdfs)

    def test_crash_run_is_deterministic(self):
        """The same seeded crash scenario replays bit-identically."""
        _, _, spec_a, res_a, ev_a = run_tuned(plan=crash_plan())
        _, _, spec_b, res_b, ev_b = run_tuned(plan=crash_plan())
        assert res_a.duration == res_b.duration
        assert len(ev_a) == len(ev_b)

        def key(s):
            # Job ids come from a process-global counter, so compare on
            # the per-job task suffix only.
            return (s.task_id.task_type.value, str(s.task_id).rsplit("_", 1)[-1],
                    s.start_time, s.end_time)

        assert sorted(map(key, res_a.task_stats)) == sorted(map(key, res_b.task_stats))


class TestDegradedGate:
    def test_gate_releases_untracked_while_down(self):
        sim = Simulator()
        tuner = make_tuner()
        spec = JobSpec(
            name="t",
            workload=WorkloadProfile(
                name="t", map_output_ratio=1.0, map_output_record_size=100.0
            ),
            input_path="/in",
            num_reducers=2,
        )
        _, gate = tuner.attach_job(spec)
        state = tuner._jobs[spec.job_id].search_states[TaskType.MAP]
        voided = tuner.on_tuner_crash(0.0, 10.0)
        assert tuner.tuner_down()
        assert voided == 0  # no incumbent yet: nothing to void
        before = state.admitted
        ev = gate.admit(TaskType.MAP, sim)
        assert ev.value == -1  # untracked launch
        assert state.admitted == before + 1

    def test_crash_voids_queue_and_pins_last_known_good(self):
        tuner = make_tuner()
        spec = JobSpec(
            name="t",
            workload=WorkloadProfile(
                name="t", map_output_ratio=1.0, map_output_record_size=100.0
            ),
            input_path="/in",
            num_reducers=2,
        )
        tuner.attach_job(spec)
        job = tuner._jobs[spec.job_id]
        state = job.search_states[TaskType.MAP]
        # Manufacture an incumbent: score the whole first wave, then
        # open the second so a batch is in flight when the crash hits.
        for sample in state.climber.pending_samples():
            state.climber.observe(sample.sample_id, 1.0)
        tuner._open_batch(job, state)
        assert tuner.configurator.queued_count(spec.job_id, TaskType.MAP) > 0
        voided = tuner.on_tuner_crash(5.0, 15.0)
        assert voided >= 1
        assert tuner.configurator.queued_count(spec.job_id, TaskType.MAP) == 0
        assert state.slots == 0 and state.crash_voided
        # Recovery reopens the search with a fresh wave.
        reopened = tuner.on_tuner_recover(15.0)
        assert reopened == voided
        assert not tuner.tuner_down()
        assert tuner.configurator.queued_count(spec.job_id, TaskType.MAP) > 0

    def test_recover_noop_while_outage_extended(self):
        tuner = make_tuner()
        spec = JobSpec(
            name="t",
            workload=WorkloadProfile(
                name="t", map_output_ratio=1.0, map_output_record_size=100.0
            ),
            input_path="/in",
            num_reducers=2,
        )
        tuner.attach_job(spec)
        tuner.on_tuner_crash(0.0, 10.0)
        tuner.on_tuner_crash(5.0, 20.0)  # overlapping crash extends it
        assert tuner.on_tuner_recover(10.0) == 0  # stale callback
        assert tuner.tuner_down()
        tuner.on_tuner_recover(20.0)
        assert not tuner.tuner_down()


class TestControlPlaneState:
    def test_register_mid_outage_crashes_in_place(self):
        sim = Simulator()
        control = ControlPlaneState(sim)
        control.apply(
            Fault(time=0.0, kind="tuner_crash", node_id=0, duration=25.0)
        )
        tuner = make_tuner()
        control.register_tuner(tuner)
        assert tuner.tuner_down()
        assert control.down_until == 25.0
        assert control.crashes == [(0.0, 25.0)]

    def test_exported_from_faults_package(self):
        assert ControlPlaneState is DirectControlPlaneState


class TestMonitorOutage:
    def run_with_monitors(self, plan):
        sc = small_cluster(start_monitors=True)
        events = []
        sc.telemetry.subscribe(events.append, categories=("fault",))
        sc.inject_faults(plan=plan)
        spec = search_spec(sc, blocks=12, reducers=4)
        am = sc.submit(spec)
        result = sc.sim.run_until_complete(am.completion, max_events=40_000_000)
        return sc, result, events

    def test_outage_blacks_out_all_node_samples(self):
        plan = FaultPlan(
            (Fault(time=10.0, kind="monitor_outage", node_id=0, duration=30.0),)
        )
        sc, result, events = self.run_with_monitors(plan)
        assert result.succeeded
        assert [e for e in events if isinstance(e, MonitorOutage)]
        assert sc.monitor.gaps == [(None, 10.0, 40.0)]
        assert not any(
            10.0 <= s.time <= 40.0 for s in sc.monitor.node_samples
        )
        # Samples outside the window still flow.
        assert any(s.time < 10.0 or s.time > 40.0 for s in sc.monitor.node_samples)

    def test_stats_gap_scoped_to_one_node(self):
        plan = FaultPlan(
            (Fault(time=10.0, kind="stats_gap", node_id=1, duration=30.0),)
        )
        sc, result, events = self.run_with_monitors(plan)
        assert result.succeeded
        gaps = [e for e in events if isinstance(e, StatsGap)]
        assert gaps and gaps[0].node_id == 1
        assert not any(
            s.node_id == 1 and 10.0 <= s.time <= 40.0
            for s in sc.monitor.node_samples
        )
        assert any(
            s.node_id != 1 and 10.0 <= s.time <= 40.0
            for s in sc.monitor.node_samples
        )

    def test_timeline_bridges_gap_with_last_level(self):
        sim = Simulator()
        monitor = CentralMonitor(sim)
        monitor.begin_gap(5.0, 15.0, node_id=3)

        def sample(t, cpu):
            return NodeStats(
                node_id=3, time=t, cpu_utilization=cpu,
                memory_utilization=0.0, running_containers=0,
            )

        monitor.on_node_stats(sample(2.0, 0.5))
        monitor.on_node_stats(sample(10.0, 1.0))  # dropped: inside gap
        monitor.on_node_stats(sample(20.0, 0.5))
        assert len(monitor.node_samples) == 2
        # The in-gap spike never lands, so the mean holds at 0.5.
        assert monitor.cpu_timelines[3].mean(0.0, until=20.0) == 0.5

    def test_outage_quarantines_tuned_waves(self):
        plan = FaultPlan(
            (Fault(time=30.0, kind="monitor_outage", node_id=0, duration=40.0),)
        )
        sc, tuner, spec, result, events = run_tuned(plan=plan)
        assert result.succeeded
        assert tuner._outage_windows == [(30.0, 70.0)]
        assert [e for e in events if isinstance(e, MonitorOutage)]
        # A wave observed across the dark window was rolled back.
        assert any(
            "outage-shifted" in line
            for st in tuner._jobs[spec.job_id].search_states.values()
            for line in st.rule_log
        )
        assert_no_output_leaks(sc.hdfs)
