"""End-to-end shuffle fetch recovery under network faults.

Covers the whole chain the network-fault model adds: flaky links make
per-fetch attempts fail, the reducer's retry loop absorbs transient
failures (timeout + exponential backoff + penalty box), exhausted
sources are reported to the app master, enough reports get a map
output declared lost and its map re-executed, and the tuner discounts
or rolls back waves whose measurements the faults inflated.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.configuration import Configuration
from repro.core.hill_climbing import GrayBoxHillClimber, HillClimbSettings
from repro.core.parameters import PARAMETER_SPACE
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.faults import Fault, FaultPlan
from repro.mapreduce.jobspec import JobSpec, TaskId, TaskType, WorkloadProfile
from repro.monitor.statistics import TaskStats
from repro.telemetry.events import MapOutputLost, TunerRollback
from repro.testing import assert_no_output_leaks
from repro.workloads.datasets import DatasetSpec
from repro.yarn.app_master import FaultToleranceSettings

MB = 1024**2


def small_cluster(seed=0, ft=None):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
        fault_tolerance=ft or FaultToleranceSettings(),
    )


def small_spec(sc, blocks=8, reducers=4, slowstart=0.05, noise=0.0, skew=0.0):
    DatasetSpec("tiny", num_blocks=blocks).load(sc.hdfs, "/in")
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=noise, partition_skew=skew,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    return JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=reducers,
        base_config=Configuration(), slowstart=slowstart,
    )


def run_with_faults(sc, plan, spec=None, max_events=40_000_000):
    sc.inject_faults(plan=plan)
    am = sc.submit(spec or small_spec(sc))
    result = sc.sim.run_until_complete(am.completion, max_events=max_events)
    return am, result


class TestFetchRecoveryEndToEnd:
    def test_link_flaky_job_completes_with_retries(self):
        sc = small_cluster()
        plan = FaultPlan(
            (Fault(time=1.0, kind="link_flaky", node_id=2,
                   fail_prob=0.6, duration=30.0),)
        )
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert sc.telemetry.counters.get("shuffle.fetch_retries", 0) > 0
        assert sum(s.fetch_retries for s in result.task_stats) > 0
        assert_no_output_leaks(sc.hdfs)

    def test_rack_partition_job_completes(self):
        sc = small_cluster()
        plan = FaultPlan(
            (Fault(time=10.0, kind="rack_partition", node_id=0, duration=20.0),)
        )
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert_no_output_leaks(sc.hdfs)

    def test_link_degrade_job_completes(self):
        sc = small_cluster()
        plan = FaultPlan(
            (Fault(time=5.0, kind="link_degrade", node_id=1,
                   net_factor=0.2, recover_time=30.0),)
        )
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert_no_output_leaks(sc.hdfs)

    def test_generated_network_plan_completes(self):
        sc = small_cluster(seed=3)
        plan = sc.inject_faults(
            horizon=60.0, link_flaky=2, rack_partitions=1, link_degraded=1
        )
        assert plan.has_network_faults
        am = sc.submit(small_spec(sc))
        result = sc.sim.run_until_complete(am.completion, max_events=40_000_000)
        assert result.succeeded
        assert_no_output_leaks(sc.hdfs)

    def test_same_seed_same_outcome(self):
        def once():
            sc = small_cluster(seed=7)
            plan = FaultPlan(
                (Fault(time=1.0, kind="link_flaky", node_id=1,
                       fail_prob=0.7, duration=40.0),)
            )
            _, result = run_with_faults(sc, plan)
            retries = sc.telemetry.counters.get("shuffle.fetch_retries", 0)
            return (result.succeeded, result.duration, retries,
                    sorted(result.failure_reasons.items()))

        assert once() == once()


class TestMapOutputLoss:
    """The pinned threshold-crossing scenario: a long, nearly-opaque
    flaky window exhausts fetch retries, reports cross the AM's
    threshold, the map output is declared lost and the map re-runs --
    and the job still succeeds."""

    PLAN = FaultPlan(
        (Fault(time=1.0, kind="link_flaky", node_id=0,
               fail_prob=0.95, duration=60.0),)
    )

    def test_map_output_lost_and_reexecuted(self):
        sc = small_cluster()
        events = []
        sc.telemetry.subscribe(events.append, categories=("yarn",))
        _, result = run_with_faults(sc, self.PLAN)
        assert result.succeeded
        counters = sc.telemetry.counters
        assert counters.get("shuffle.fetch_failure_reports", 0) >= 3
        assert counters.get("yarn.map_outputs_lost", 0) >= 1
        # The loss is charged as an environmental fetch_failure and the
        # map re-ran: its index appears in more than one attempt.
        assert result.failure_reasons.get("fetch_failure", 0) >= 1
        lost = [e for e in events if isinstance(e, MapOutputLost)]
        assert lost and all(e.reports >= 1 for e in lost)
        reruns = {
            s.task_id.index
            for s in result.stats_of(TaskType.MAP)
            if s.failed and s.failure_kind == "fetch_failure"
        }
        attempts = {}
        for s in result.stats_of(TaskType.MAP):
            attempts.setdefault(s.task_id.index, set()).add(s.attempt)
        assert all(len(attempts[i]) > 1 for i in reruns)
        assert_no_output_leaks(sc.hdfs)


class TestClimberRollback:
    def make_climber(self, rng_seed=0):
        space = PARAMETER_SPACE.subspace(
            [PARAMETER_SPACE.names[0], PARAMETER_SPACE.names[1]]
        )
        return GrayBoxHillClimber(
            space,
            np.random.default_rng(rng_seed),
            HillClimbSettings(m=3, n=3, global_search_limit=2),
        )

    def test_rollback_without_incumbent_refused(self):
        climber = self.make_climber()
        climber.propose()
        assert climber.rollback() is False  # no last-known-good yet

    def test_rollback_voids_batch_and_keeps_incumbent(self):
        climber = self.make_climber()
        for sample in climber.propose():
            climber.observe(sample.sample_id, 1.0 + 0.1 * sample.sample_id)
        best_before = climber.best_cost()
        batch = climber.propose()
        assert batch
        climber.observe(batch[0].sample_id, 99.0)  # poisoned observation
        assert climber.rollback() is True
        assert climber.best_cost() == best_before
        assert climber.pending_samples() == []
        fresh = climber.propose()  # re-draws around the incumbent
        assert fresh and all(not s.costs for s in fresh)
        assert not climber.finished

    def test_rollback_notifies_listeners(self):
        climber = self.make_climber()
        decisions = []
        climber.decision_listeners.append(lambda d, info: decisions.append(d))
        for sample in climber.propose():
            climber.observe(sample.sample_id, 1.0)
        climber.propose()
        assert climber.rollback() is True
        assert "rollback" in decisions


class TestTunerRollbackGate:
    """Drive the aggressive tuner's safety gate with synthetic stats."""

    def make_tuner(self):
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(
                hill_climb=HillClimbSettings(m=2, n=2, global_search_limit=2),
                use_knowledge_base=False,
            ),
            rng=np.random.default_rng(0),
        )
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_output_noise=0.0, partition_skew=0.0,
            map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
        )
        spec = JobSpec(
            name="t", workload=profile, input_path="/in", num_reducers=4,
            base_config=Configuration(),
        )
        tuner.attach_job(spec)
        return tuner, spec

    def feed_wave(self, tuner, spec, state, index0, fetch_retries=0, wave=1):
        """Complete the in-flight wave with one stat per pending sample."""
        index = index0
        for sample in list(state.climber.pending_samples()):
            tid = TaskId(spec.job_id, TaskType.MAP, index)
            state.bindings[str(tid)] = sample.sample_id
            stats = TaskStats(
                task_id=tid, task_type=TaskType.MAP, node_id=0, attempt=0,
                config={}, start_time=0.0, end_time=10.0 + index,
                cpu_seconds=5.0, allocated_cores=1.0,
                working_set_bytes=100 * MB, container_memory_bytes=200 * MB,
                fetch_retries=fetch_retries, wave=wave,
            )
            tuner.on_task_stats(stats)
            index += 1
        return index

    def test_fault_inflated_wave_rolls_back(self):
        tuner, spec = self.make_tuner()
        job = tuner._jobs[spec.job_id]
        state = job.search_states[TaskType.MAP]
        state.admitted = 1000  # plenty of tasks still to come
        index = self.feed_wave(tuner, spec, state, 0, fetch_retries=0, wave=1)
        best_before = state.climber.best_cost()
        assert best_before is not None  # wave 1 set the incumbent
        self.feed_wave(tuner, spec, state, index, fetch_retries=4, wave=2)
        assert any("rolled back" in line for line in state.rule_log)
        assert state.climber.best_cost() == best_before  # incumbent kept
        assert state.result_buffer == [] and state.window == []
        assert not state.search_done
        assert state.climber.pending_samples()  # re-proposed batch

    def test_clean_wave_does_not_roll_back(self):
        tuner, spec = self.make_tuner()
        job = tuner._jobs[spec.job_id]
        state = job.search_states[TaskType.MAP]
        state.admitted = 1000
        index = self.feed_wave(tuner, spec, state, 0, fetch_retries=0, wave=1)
        self.feed_wave(tuner, spec, state, index, fetch_retries=0, wave=2)
        assert not any("rolled back" in line for line in state.rule_log)

    def test_minority_inflation_is_discounted_not_rolled_back(self):
        """Below the majority threshold the wave proceeds; the inflated
        stat is excluded from the rule window but still observed (its
        backoff time discounted via effective_duration)."""
        tuner, spec = self.make_tuner()
        job = tuner._jobs[spec.job_id]
        state = job.search_states[TaskType.MAP]
        state.admitted = 1000
        index = self.feed_wave(tuner, spec, state, 0, fetch_retries=0, wave=1)
        # Wave 2: first sample inflated, the rest clean (1 of 3 with the
        # incumbent replay -> below the >= 50% gate).
        pending = list(state.climber.pending_samples())
        assert len(pending) >= 2
        for i, sample in enumerate(pending):
            tid = TaskId(spec.job_id, TaskType.MAP, index + i)
            state.bindings[str(tid)] = sample.sample_id
            tuner.on_task_stats(TaskStats(
                task_id=tid, task_type=TaskType.MAP, node_id=0, attempt=0,
                config={}, start_time=0.0, end_time=20.0,
                cpu_seconds=5.0, allocated_cores=1.0,
                working_set_bytes=100 * MB, container_memory_bytes=200 * MB,
                fetch_retries=(3 if i == 0 else 0), wave=2,
            ))
        assert not any("rolled back" in line for line in state.rule_log)


class TestTunerRollbackEndToEnd:
    def test_flaky_reduce_waves_roll_back_and_job_succeeds(self):
        """Pinned end-to-end scenario covering the whole safety chain:
        the flaky window inflates reduce wave 2, the gate fires (and is
        visible as a TunerRollback event), a map output is lost and
        re-executed, and the job still completes."""
        sc = small_cluster()
        events = []
        sc.telemetry.subscribe(
            events.append, categories=("tuner", "yarn")
        )
        plan = FaultPlan(
            (Fault(time=5.0, kind="link_flaky", node_id=1,
                   fail_prob=0.6, duration=400.0),)
        )
        sc.inject_faults(plan=plan)
        DatasetSpec("d", num_blocks=60).load(sc.hdfs, "/in")
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_output_noise=0.02, partition_skew=0.1,
            map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
        )
        spec = JobSpec(
            name="t", workload=profile, input_path="/in", num_reducers=12
        )
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(
                hill_climb=HillClimbSettings(m=4, n=4, global_search_limit=2),
                use_knowledge_base=False,
            ),
            rng=np.random.default_rng(0),
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion, max_events=40_000_000)
        assert result.succeeded
        rollbacks = [e for e in events if isinstance(e, TunerRollback)]
        assert rollbacks
        assert all(e.suspect_samples * 2 >= e.total_samples for e in rollbacks)
        assert sc.telemetry.counters.get("tuner.rollbacks", 0) >= 1
        assert sc.telemetry.counters.get("yarn.map_outputs_lost", 0) >= 1
        state = tuner._jobs[spec.job_id].search_states[TaskType.REDUCE]
        assert any("rolled back" in line for line in state.rule_log)
        assert_no_output_leaks(sc.hdfs)
