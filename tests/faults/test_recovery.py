"""Failure-aware scheduling end to end: jobs survive injected faults.

Timing anchors (fault-free, seed 0, 4 slaves, 8 maps / 4 reduces):
maps run ~0.5-23s, reduces ~23-67s, and every node hosts both kinds,
so faults pinned inside those windows reliably destroy live work.
"""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.configuration import Configuration
from repro.experiments.harness import SimCluster
from repro.faults import Fault, FaultPlan
from repro.mapreduce.counters import Counter
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.testing import assert_no_output_leaks
from repro.workloads.datasets import DatasetSpec
from repro.yarn.app_master import (
    FaultToleranceSettings,
    SpeculationSettings,
    WaveGate,
)

MB = 1024**2


def small_cluster(seed=0, ft=None):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
        fault_tolerance=ft or FaultToleranceSettings(),
    )


def small_spec(sc, blocks=8, reducers=4, slowstart=0.05):
    DatasetSpec("tiny", num_blocks=blocks).load(sc.hdfs, "/in")
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=0.0, partition_skew=0.0,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    return JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=reducers,
        base_config=Configuration(), slowstart=slowstart,
    )


def run_with_faults(sc, plan, gate=None, max_events=10_000_000):
    sc.inject_faults(plan=plan)
    am = sc.submit(small_spec(sc), gate=gate)
    result = sc.sim.run_until_complete(am.completion, max_events=max_events)
    return am, result


class TestPreemption:
    def test_killed_attempts_are_reexecuted(self):
        sc = small_cluster()
        plan = FaultPlan(
            (
                Fault(time=10.0, kind="container_kill", node_id=0),
                Fault(time=30.0, kind="container_kill", node_id=1),
            )
        )
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert result.counters[Counter.KILLED_TASK_ATTEMPTS] >= 2
        assert result.failure_reasons.get("preempted", 0) >= 2
        assert_no_output_leaks(sc.hdfs)

    def test_every_task_still_produces_output(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=30.0, kind="container_kill", node_id=2, count=2),))
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        ok_reds = [s for s in result.stats_of(TaskType.REDUCE) if not s.failed]
        assert len(ok_reds) == 4
        assert len(sc.hdfs.list_prefix("/out/")) == 4


class TestNodeCrash:
    def test_job_survives_node_loss(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=30.0, kind="node_crash", node_id=2),))
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert sc.rm.is_node_lost(2)
        assert result.failure_reasons.get("node_lost", 0) >= 1
        assert_no_output_leaks(sc.hdfs)

    def test_no_committed_output_from_lost_attempts(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=30.0, kind="node_crash", node_id=2),))
        _, result = run_with_faults(sc, plan)
        # Winners that started after the crash window cannot be on the
        # dead node; earlier winners may be (their output is committed).
        for s in result.stats_of(TaskType.REDUCE):
            if not s.failed and s.start_time > 45.0:
                assert s.node_id != 2


class TestBlacklisting:
    def test_all_nodes_blacklisted_still_schedules(self):
        # Threshold 1 + a kill on every node blacklists the whole
        # cluster; the scheduler's escape hatch must keep the job alive.
        ft = FaultToleranceSettings(blacklist_threshold=1)
        sc = small_cluster(ft=ft)
        plan = FaultPlan(
            tuple(
                Fault(time=26.0 + i, kind="container_kill", node_id=i)
                for i in range(4)
            )
        )
        am, result = run_with_faults(sc, plan)
        assert len(am.blacklisted_nodes) == 4
        assert result.succeeded
        assert_no_output_leaks(sc.hdfs)

    def test_below_threshold_no_blacklist(self):
        sc = small_cluster()  # default threshold 3
        plan = FaultPlan((Fault(time=30.0, kind="container_kill", node_id=1),))
        am, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert am.blacklisted_nodes == set()


class TestSpeculation:
    def straggler_setup(self):
        ft = FaultToleranceSettings(
            speculation=SpeculationSettings(
                interval=5.0, slowness_factor=1.3, min_completed=1
            )
        )
        sc = small_cluster(ft=ft)
        # Degrade one node early and hard: whatever lands there crawls
        # at 5% speed and becomes the job's last running task.
        plan = FaultPlan(
            (
                Fault(
                    time=1.0, kind="degrade", node_id=3,
                    cpu_factor=0.05, disk_factor=0.05,
                ),
            )
        )
        return sc, plan

    def test_backup_attempt_rescues_straggler(self):
        sc, plan = self.straggler_setup()
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert result.counters[Counter.SPECULATIVE_TASK_ATTEMPTS] >= 1
        assert_no_output_leaks(sc.hdfs)

    def test_loser_is_killed_not_failed(self):
        sc, plan = self.straggler_setup()
        _, result = run_with_faults(sc, plan)
        # The slow primary (or the backup, in a photo finish) dies with
        # kind "speculation": killed, never counted as a task failure.
        assert result.failure_reasons.get("speculation", 0) >= 1
        assert result.counters[Counter.FAILED_TASK_ATTEMPTS] == 0

    def test_backup_lands_off_the_slow_node(self):
        sc, plan = self.straggler_setup()
        _, result = run_with_faults(sc, plan)
        spec_stats = [
            s
            for t in (TaskType.MAP, TaskType.REDUCE)
            for s in result.stats_of(t)
            if s.speculative
        ]
        assert spec_stats
        assert all(s.node_id != 3 for s in spec_stats)

    def test_speculation_off_by_default(self):
        sc = small_cluster()  # FaultToleranceSettings() -> speculation None
        plan = FaultPlan(
            (
                Fault(
                    time=1.0, kind="degrade", node_id=3,
                    cpu_factor=0.3, disk_factor=0.3,
                ),
            )
        )
        _, result = run_with_faults(sc, plan)
        assert result.succeeded
        assert result.counters[Counter.SPECULATIVE_TASK_ATTEMPTS] == 0


class TestWaveGateRetries:
    def test_wave_slots_survive_preemption(self):
        # A kill mid-wave must release the victim's wave slot, or the
        # next wave never opens and the job deadlocks (max_events trips).
        sc = small_cluster()
        plan = FaultPlan(
            (
                Fault(time=5.0, kind="container_kill", node_id=0, count=2),
                Fault(time=30.0, kind="container_kill", node_id=1),
            )
        )
        gate = WaveGate(map_wave_size=4, reduce_wave_size=2)
        _, result = run_with_faults(sc, plan, gate=gate)
        assert result.succeeded
        assert result.counters[Counter.KILLED_TASK_ATTEMPTS] >= 1
        ok_maps = [s for s in result.stats_of(TaskType.MAP) if not s.failed]
        assert len(ok_maps) == 8

    def test_wave_gate_with_node_crash(self):
        sc = small_cluster()
        plan = FaultPlan((Fault(time=30.0, kind="node_crash", node_id=1),))
        gate = WaveGate(map_wave_size=4, reduce_wave_size=2)
        _, result = run_with_faults(sc, plan, gate=gate)
        assert result.succeeded
        assert_no_output_leaks(sc.hdfs)


class TestPermanentFailure:
    def test_env_retry_budget_exhaustion_fails_job_cleanly(self):
        # Kill the same node's containers more often than the retry
        # budget allows; the job must *finish* (not hang) and report
        # the failure instead of silently succeeding.
        ft = FaultToleranceSettings(max_env_retries=1)
        sc = small_cluster(ft=ft)
        plan = FaultPlan(
            tuple(
                Fault(time=t, kind="container_kill", node_id=n, count=4)
                for t in (26.0, 32.0, 38.0, 44.0, 50.0, 56.0)
                for n in range(4)
            )
        )
        _, result = run_with_faults(sc, plan)
        assert not result.succeeded
        assert result.failure_reasons.get("preempted", 0) >= 1
        assert_no_output_leaks(sc.hdfs)
