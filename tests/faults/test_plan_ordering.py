"""Draw-ordering guarantees of ``generate_fault_plan``.

The generator draws fault families in a fixed order -- legacy
(crashes/kills/degrades), then network, then elastic, then control --
each from the single ``("faults", "plan")`` stream.  Adding counts for
a *later* family must never perturb the draws of an earlier one:
that is what keeps every pinned scenario replayable when new kinds
(and new ``--kinds`` filters) are bolted on.
"""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.experiments.faults import KIND_TO_KNOB, levels_for_kinds
from repro.faults import (
    CONTROL_FAULT_KINDS,
    FAULT_KINDS,
    Fault,
    generate_fault_plan,
    plan_from_json,
    plan_to_json,
)
from repro.sim.rng import RngRegistry

NUM_NODES = ClusterSpec().num_slaves

LEGACY = {"crashes": 1, "container_kills": 2, "degraded": 1}
NETWORK = {"link_degraded": 1, "link_flaky": 1, "rack_partitions": 1}
ELASTIC = {"decommissions": 1, "joins": 1, "spot_preempts": 1}
CONTROL = {"tuner_crashes": 1, "monitor_outages": 1, "stats_gaps": 1}


def draw(seed=7, horizon=60.0, **knobs):
    return generate_fault_plan(
        RngRegistry(seed).stream("faults", "plan"),
        num_nodes=NUM_NODES,
        horizon=horizon,
        **knobs,
    )


class TestDrawOrdering:
    @pytest.mark.parametrize(
        "base_knobs",
        [LEGACY, {**LEGACY, **NETWORK}, {**LEGACY, **NETWORK, **ELASTIC}],
        ids=["legacy", "legacy+network", "legacy+network+elastic"],
    )
    def test_control_draws_never_perturb_earlier_families(self, base_knobs):
        base = draw(**base_knobs)
        extended = draw(**base_knobs, **CONTROL)
        # The plan is time-sorted, so compare by family: the earlier
        # families' faults must be byte-identical (control kinds draw
        # strictly after them on the stream)...
        earlier = tuple(
            f for f in extended.faults if f.kind not in CONTROL_FAULT_KINDS
        )
        assert earlier == base.faults
        # ...and each control kind shows up exactly once.
        control = [f for f in extended.faults if f.kind in CONTROL_FAULT_KINDS]
        assert sorted(f.kind for f in control) == [
            "monitor_outage", "stats_gap", "tuner_crash"
        ]

    def test_same_seed_same_plan(self):
        knobs = {**LEGACY, **NETWORK, **ELASTIC, **CONTROL}
        assert draw(**knobs) == draw(**knobs)

    def test_control_windows_inside_horizon(self):
        plan = draw(tuner_crashes=2, monitor_outages=2, stats_gaps=2, horizon=50.0)
        for fault in plan.faults:
            assert 0.0 < fault.time < 50.0
            assert fault.duration > 0.0
        gaps = [f for f in plan.faults if f.kind == "stats_gap"]
        assert all(0 <= f.node_id < NUM_NODES for f in gaps)

    def test_has_control_faults_flag(self):
        assert draw(tuner_crashes=1).has_control_faults
        assert not draw(**LEGACY).has_control_faults
        assert not draw(**LEGACY).has_elastic_faults


class TestControlPlanSerialization:
    def test_json_round_trip(self):
        plan = draw(**LEGACY, **NETWORK, **ELASTIC, **CONTROL)
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_control_kinds_registered(self):
        assert CONTROL_FAULT_KINDS <= set(FAULT_KINDS)
        assert CONTROL_FAULT_KINDS == {
            "tuner_crash", "monitor_outage", "stats_gap"
        }

    def test_control_fault_needs_duration(self):
        for kind in sorted(CONTROL_FAULT_KINDS):
            with pytest.raises(ValueError):
                Fault(time=1.0, kind=kind, node_id=0, duration=0.0)

    def test_describe_mentions_each_kind(self):
        crash = Fault(time=1.0, kind="tuner_crash", node_id=0, duration=2.0)
        outage = Fault(time=1.0, kind="monitor_outage", node_id=0, duration=2.0)
        gap = Fault(time=1.0, kind="stats_gap", node_id=3, duration=2.0)
        assert "tuner crash" in crash.describe()
        assert "monitor outage" in outage.describe()
        assert "stats gap" in gap.describe() and "node 3" in gap.describe()


class TestKindsFilter:
    def test_kind_to_knob_covers_control_kinds(self):
        for kind in CONTROL_FAULT_KINDS:
            assert kind in KIND_TO_KNOB

    def test_levels_for_control_kinds(self):
        levels = levels_for_kinds(("tuner_crash", "monitor_outage", "stats_gap"))
        assert levels["low"] == {
            "tuner_crashes": 1, "monitor_outages": 1, "stats_gaps": 1
        }
        # Control faults remove no nodes, so high doubles them.
        assert levels["high"] == {
            "tuner_crashes": 2, "monitor_outages": 2, "stats_gaps": 2
        }

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            draw(tuner_crashes=-1)
