"""Fault-plan construction, validation, and generation determinism."""

import numpy as np
import pytest

from repro.faults import (
    Fault,
    FaultPlan,
    generate_fault_plan,
    plan_from_json,
    plan_to_json,
)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(time=1.0, kind="meteor", node_id=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            Fault(time=-1.0, kind="node_crash", node_id=0)

    def test_bad_slowdown_factors_rejected(self):
        with pytest.raises(ValueError, match="factors"):
            Fault(time=1.0, kind="degrade", node_id=0, cpu_factor=0.0)
        with pytest.raises(ValueError, match="factors"):
            Fault(time=1.0, kind="degrade", node_id=0, disk_factor=1.5)

    def test_bad_kill_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            Fault(time=1.0, kind="container_kill", node_id=0, count=0)


class TestFaultPlan:
    def test_sorted_by_time(self):
        plan = FaultPlan(
            (
                Fault(time=9.0, kind="node_crash", node_id=2),
                Fault(time=1.0, kind="container_kill", node_id=0),
                Fault(time=5.0, kind="degrade", node_id=1, cpu_factor=0.5),
            )
        )
        assert [f.time for f in plan] == [1.0, 5.0, 9.0]

    def test_node_sets(self):
        plan = FaultPlan(
            (
                Fault(time=1.0, kind="node_crash", node_id=3),
                Fault(time=2.0, kind="degrade", node_id=1, disk_factor=0.5),
            )
        )
        assert plan.crashed_nodes == [3]
        assert plan.degraded_nodes == [1]
        assert len(plan) == 2

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan((Fault(time=1.5, kind="node_crash", node_id=7),))
        assert plan.describe() == ["t=1.5s crash node 7"]


class TestGenerateFaultPlan:
    def test_same_seed_same_plan(self):
        a = generate_fault_plan(
            np.random.default_rng(7), num_nodes=12, horizon=100.0,
            crashes=1, container_kills=3, degraded=2,
        )
        b = generate_fault_plan(
            np.random.default_rng(7), num_nodes=12, horizon=100.0,
            crashes=1, container_kills=3, degraded=2,
        )
        assert a == b

    def test_different_seed_different_plan(self):
        a = generate_fault_plan(
            np.random.default_rng(1), num_nodes=12, horizon=100.0, crashes=1
        )
        b = generate_fault_plan(
            np.random.default_rng(2), num_nodes=12, horizon=100.0, crashes=1
        )
        assert a != b

    def test_crash_and_degrade_sets_disjoint(self):
        plan = generate_fault_plan(
            np.random.default_rng(5), num_nodes=6, horizon=50.0,
            crashes=2, degraded=3,
        )
        assert not set(plan.crashed_nodes) & set(plan.degraded_nodes)

    def test_kills_avoid_crashed_nodes(self):
        plan = generate_fault_plan(
            np.random.default_rng(5), num_nodes=4, horizon=50.0,
            crashes=2, container_kills=20,
        )
        crashed = set(plan.crashed_nodes)
        for f in plan:
            if f.kind == "container_kill":
                assert f.node_id not in crashed

    def test_times_within_windows(self):
        plan = generate_fault_plan(
            np.random.default_rng(3), num_nodes=10, horizon=200.0,
            crashes=2, container_kills=5, degraded=2,
        )
        for f in plan:
            if f.kind == "node_crash":
                assert 0.15 * 200 <= f.time <= 0.60 * 200
            elif f.kind == "degrade":
                assert 0.05 * 200 <= f.time <= 0.30 * 200
            else:
                assert 0.20 * 200 <= f.time <= 0.80 * 200

    def test_must_leave_a_healthy_node(self):
        with pytest.raises(ValueError, match="nodes"):
            generate_fault_plan(
                np.random.default_rng(0), num_nodes=3, horizon=10.0,
                crashes=2, degraded=1,
            )

    def test_rejects_bad_horizon_and_counts(self):
        with pytest.raises(ValueError, match="horizon"):
            generate_fault_plan(np.random.default_rng(0), num_nodes=4, horizon=0.0)
        with pytest.raises(ValueError, match="counts"):
            generate_fault_plan(
                np.random.default_rng(0), num_nodes=4, horizon=10.0, crashes=-1
            )


class TestElasticFaults:
    def elastic_plan(self):
        return FaultPlan(
            (
                Fault(time=5.0, kind="node_join", node_id=2),
                Fault(time=12.0, kind="node_decommission", node_id=0),
                Fault(time=20.0, kind="spot_preempt", node_id=1, duration=4.0),
            )
        )

    def test_json_round_trip_with_elastic_kinds(self):
        plan = self.elastic_plan()
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_spot_preempt_needs_grace_window(self):
        with pytest.raises(ValueError, match="grace window"):
            Fault(time=1.0, kind="spot_preempt", node_id=0)
        with pytest.raises(ValueError, match="grace window"):
            Fault(time=1.0, kind="spot_preempt", node_id=0, duration=0.0)

    def test_describe_mentions_elastic_faults(self):
        descriptions = "\n".join(self.elastic_plan().describe())
        for needle in ("join", "decommission", "preempt"):
            assert needle in descriptions

    def test_has_elastic_faults_flag(self):
        assert self.elastic_plan().has_elastic_faults
        legacy = FaultPlan((Fault(time=1.0, kind="node_crash", node_id=0),))
        assert not legacy.has_elastic_faults

    def test_generated_drain_and_preempt_targets_disjoint(self):
        plan = generate_fault_plan(
            np.random.default_rng(11), num_nodes=8, horizon=100.0,
            decommissions=2, joins=1, spot_preempts=2,
        )
        drained = [f.node_id for f in plan if f.kind == "node_decommission"]
        preempted = [f.node_id for f in plan if f.kind == "spot_preempt"]
        assert len(drained) == 2 and len(preempted) == 2
        assert not set(drained) & set(preempted)
        assert sum(1 for f in plan if f.kind == "node_join") == 1
        for f in plan:
            if f.kind == "spot_preempt":
                assert f.duration > 0

    def test_generation_rejects_cluster_emptying_churn(self):
        with pytest.raises(ValueError, match="empty"):
            generate_fault_plan(
                np.random.default_rng(0), num_nodes=4, horizon=50.0,
                crashes=1, decommissions=2, spot_preempts=1,
            )

    def test_elastic_knobs_are_replay_stable(self):
        """Adding elastic churn must not perturb the legacy draws."""
        base = generate_fault_plan(
            np.random.default_rng(9), num_nodes=10, horizon=100.0,
            crashes=1, container_kills=2, degraded=1,
        )
        churned = generate_fault_plan(
            np.random.default_rng(9), num_nodes=10, horizon=100.0,
            crashes=1, container_kills=2, degraded=1,
            decommissions=1, joins=1, spot_preempts=1,
        )
        legacy = [f for f in churned if f.kind in ("node_crash", "container_kill", "degrade")]
        assert sorted(legacy, key=lambda f: (f.time, f.kind)) == sorted(
            base, key=lambda f: (f.time, f.kind)
        )

    def test_levels_for_kinds_covers_elastic(self):
        from repro.experiments.faults import levels_for_kinds

        levels = levels_for_kinds(
            ("node_decommission", "node_join", "spot_preempt")
        )
        assert levels["none"] == {}
        assert levels["low"] == {"decommissions": 1, "joins": 1, "spot_preempts": 1}
        # Node-removing kinds stay capped at one even at the high level.
        assert levels["high"] == {"decommissions": 1, "joins": 2, "spot_preempts": 1}
