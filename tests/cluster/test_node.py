"""Tests for node resource accounting and hardware operations."""

import pytest

from repro.cluster.node import GB, MB, Node, NodeResources
from repro.sim import Simulator
from repro.sim.engine import SimulationError


@pytest.fixture
def node():
    return Node(Simulator(), node_id=0, rack=0, resources=NodeResources())


class TestAccounting:
    def test_fresh_node_fits_a_container(self, node):
        assert node.can_fit(1 * GB, 1)

    def test_reserve_reduces_headroom(self, node):
        node.reserve(2 * GB, 4)
        assert node.memory_headroom == node.yarn_memory_total - 2 * GB
        assert node.vcore_headroom == node.yarn_vcores_total - 4

    def test_cannot_overcommit_memory(self, node):
        assert not node.can_fit(node.yarn_memory_total + 1, 1)
        with pytest.raises(SimulationError):
            node.reserve(node.yarn_memory_total + 1, 1)

    def test_cannot_overcommit_vcores(self, node):
        assert not node.can_fit(1 * GB, node.yarn_vcores_total + 1)

    def test_release_restores_headroom(self, node):
        node.reserve(1 * GB, 2)
        node.release(1 * GB, 2)
        assert node.memory_headroom == node.yarn_memory_total
        assert node.vcore_headroom == node.yarn_vcores_total

    def test_over_release_raises(self, node):
        with pytest.raises(SimulationError):
            node.release(1 * GB, 1)

    def test_paper_capacity_28_vcores_6gb(self, node):
        # The evaluation's per-node container pool (Section 8.1).
        assert node.yarn_vcores_total == 28
        assert node.yarn_memory_total == 6 * GB

    def test_default_six_1gb_containers_fit(self, node):
        for _ in range(6):
            node.reserve(1 * GB, 1)
        assert not node.can_fit(1 * GB, 1)

    def test_memory_utilization_fraction(self, node):
        node.reserve(3 * GB, 1)
        assert node.memory_utilization() == pytest.approx(0.5)


class TestHardwareOps:
    def test_disk_read_duration(self):
        sim = Simulator()
        node = Node(sim, 0, 0, NodeResources(disk_read_bw=100 * MB))
        done = node.disk_read(200 * MB)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(2.0)

    def test_disk_write_slower_than_read(self):
        sim = Simulator()
        node = Node(sim, 0, 0, NodeResources(disk_read_bw=110 * MB, disk_write_bw=55 * MB))
        read = node.disk_read(110 * MB)
        sim.run_until_complete(read)
        t_read = sim.now
        write = node.disk_write(110 * MB)
        sim.run_until_complete(write)
        assert sim.now - t_read > t_read  # write took longer

    def test_reads_and_writes_contend_on_spindle(self):
        sim = Simulator()
        node = Node(sim, 0, 0, NodeResources(disk_read_bw=100 * MB, disk_write_bw=100 * MB))
        # Two concurrent reads halve each other's bandwidth.
        d1 = node.disk_read(100 * MB)
        node.disk_read(100 * MB)
        sim.run_until_complete(d1)
        assert sim.now == pytest.approx(2.0)

    def test_compute_capped_by_cores(self):
        sim = Simulator()
        node = Node(sim, 0, 0, NodeResources(physical_cores=8, core_speed=1.0))
        done = node.compute(4.0, max_cores=2.0)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(2.0)

    def test_compute_contention_shares_cores(self):
        sim = Simulator()
        node = Node(sim, 0, 0, NodeResources(physical_cores=2, core_speed=1.0))
        # Three tasks each wanting 1 core on a 2-core node: fair share 2/3.
        evs = [node.compute(2.0, max_cores=1.0) for _ in range(3)]
        for ev in evs:
            sim.run_until_complete(ev)
        assert sim.now == pytest.approx(3.0)

    def test_cpu_utilization_reflects_load(self):
        sim = Simulator()
        node = Node(sim, 0, 0, NodeResources(physical_cores=8))
        node.compute(100.0, max_cores=4.0)
        sim.run(until=0.1)
        assert node.cpu_utilization() == pytest.approx(0.5)

    def test_cores_per_vcore_quarter_core(self, node):
        # 8 physical cores exposed as 32 vcores => 1/4 core per vcore.
        assert node.resources.cores_per_vcore == pytest.approx(0.25)
