"""Tests for the cluster network model."""

import pytest

from repro.cluster.node import MB, NodeResources
from repro.cluster.topology import Cluster, ClusterSpec, build_cluster, paper_cluster_spec
from repro.sim import Simulator


def small_cluster(sim=None, nic=100 * MB, uplink=None):
    sim = sim or Simulator()
    spec = ClusterSpec(
        num_slaves=4,
        racks=(2, 2),
        node_resources=NodeResources(nic_bw=nic),
        rack_uplink_bw=uplink,
    )
    return sim, Cluster(sim, spec)


class TestTransfers:
    def test_same_rack_transfer_duration(self):
        sim, cluster = small_cluster()
        a, b = cluster.nodes[0], cluster.nodes[1]
        assert a.rack == b.rack
        done = cluster.network.transfer(a, b, 200 * MB)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(2.0)

    def test_local_transfer_is_free(self):
        sim, cluster = small_cluster()
        a = cluster.nodes[0]
        done = cluster.network.transfer(a, a, 10**12)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(0.0)

    def test_cross_rack_limited_by_uplink(self):
        sim, cluster = small_cluster(uplink=50 * MB)
        a, b = cluster.nodes[0], cluster.nodes[2]
        assert a.rack != b.rack
        done = cluster.network.transfer(a, b, 100 * MB)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(2.0)

    def test_concurrent_transfers_share_rx(self):
        sim, cluster = small_cluster()
        dst = cluster.nodes[0]
        src1, src2 = cluster.nodes[1], cluster.nodes[1]
        d1 = cluster.network.transfer(cluster.nodes[1], dst, 100 * MB)
        # Different sender, same receiver: RX link is the bottleneck...
        # but sender 1's TX carries both if the same source is used, so
        # use a distinct same-rack source via node index 1 twice is the
        # same node; this asserts TX sharing instead.
        sim.run_until_complete(d1)
        assert sim.now > 0

    def test_two_senders_one_receiver_share_rx(self):
        sim, cluster = small_cluster()
        dst, s1 = cluster.nodes[0], cluster.nodes[1]
        spec = ClusterSpec(num_slaves=4, racks=(4,), node_resources=NodeResources(nic_bw=100 * MB))
        # single-rack cluster avoids uplink effects
        sim2 = Simulator()
        c2 = Cluster(sim2, spec)
        d1 = c2.network.transfer(c2.nodes[1], c2.nodes[0], 100 * MB)
        d2 = c2.network.transfer(c2.nodes[2], c2.nodes[0], 100 * MB)
        sim2.run_until_complete(d1)
        sim2.run_until_complete(d2)
        assert sim2.now == pytest.approx(2.0)  # 200 MB through one 100 MB/s RX

    def test_transfer_cap_respected(self):
        sim, cluster = small_cluster()
        a, b = cluster.nodes[0], cluster.nodes[1]
        done = cluster.network.transfer(a, b, 100 * MB, cap=10 * MB)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(10.0)


class TestFetchInto:
    def test_fetch_charges_rx(self):
        sim, cluster = small_cluster()
        dst = cluster.nodes[0]
        done = cluster.network.fetch_into(dst, 100 * MB)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(1.0)

    def test_fetch_with_copier_link_cap(self):
        from repro.sim.resources import Link

        sim, cluster = small_cluster()
        dst = cluster.nodes[0]
        copiers = Link("copiers", 20 * MB)
        done = cluster.network.fetch_into(dst, 100 * MB, extra_links=[copiers])
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(5.0)

    def test_many_fetches_bounded_by_core(self):
        # Core capacity = sum of uplinks; with tiny uplinks the fabric
        # core becomes the aggregate bottleneck.
        sim, cluster = small_cluster(uplink=25 * MB)  # core = 50 MB/s
        d1 = cluster.network.fetch_into(cluster.nodes[0], 50 * MB)
        d2 = cluster.network.fetch_into(cluster.nodes[2], 50 * MB)
        sim.run_until_complete(d1)
        sim.run_until_complete(d2)
        assert sim.now == pytest.approx(2.0)


class TestMonitoring:
    def test_rx_utilization(self):
        sim, cluster = small_cluster()
        dst = cluster.nodes[0]
        cluster.network.fetch_into(dst, 10**10)
        sim.run(until=0.5)
        assert cluster.network.rx_utilization(dst) == pytest.approx(1.0)

    def test_idle_utilization_zero(self):
        _sim, cluster = small_cluster()
        assert cluster.network.tx_utilization(cluster.nodes[0]) == 0.0


class TestTopology:
    def test_paper_cluster_shape(self):
        cluster = build_cluster(Simulator())
        assert len(cluster.nodes) == 18
        racks = {n.rack for n in cluster.nodes}
        assert racks == {0, 1}

    def test_rack_sizes_must_sum(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_slaves=5, racks=(2, 2))

    def test_total_resources(self):
        cluster = build_cluster(Simulator())
        assert cluster.total_yarn_vcores == 18 * 28
        assert cluster.total_yarn_memory == 18 * 6 * 1024**3

    def test_node_ids_sequential(self):
        cluster = build_cluster(Simulator())
        assert [n.node_id for n in cluster.nodes] == list(range(18))

    def test_paper_spec_is_default(self):
        assert paper_cluster_spec().num_slaves == 18
