"""Tests for the resource manager and node managers."""

import pytest

from repro.cluster.container import ContainerState
from repro.cluster.node import GB
from repro.cluster.topology import Cluster, ClusterSpec
from repro.sim import Simulator
from repro.sim.engine import SimulationError
from repro.yarn.node_manager import NodeManager
from repro.yarn.records import ContainerRequest, Resource
from repro.yarn.resource_manager import ALLOCATION_LATENCY, ResourceManager
from repro.yarn.scheduler import FifoScheduler


def make_rm(num_slaves=2):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_slaves=num_slaves, racks=(num_slaves,)))
    rm = ResourceManager(sim, cluster, FifoScheduler(cluster))
    rm.register_app("a")
    return sim, cluster, rm


def req(mb=1024, vcores=1, app="a"):
    return ContainerRequest(app_id=app, resource=Resource.of_mb(mb, vcores))


class TestAllocation:
    def test_grant_arrives_after_heartbeat_latency(self):
        sim, _cluster, rm = make_rm()
        grant = rm.allocate(req())
        container = sim.run_until_complete(grant)
        assert sim.now == pytest.approx(ALLOCATION_LATENCY)
        assert container.memory_bytes == 1 * GB
        assert container.state is ContainerState.ALLOCATED

    def test_reservation_applied_on_grant(self):
        sim, cluster, rm = make_rm()
        container = sim.run_until_complete(rm.allocate(req(mb=2048, vcores=3)))
        assert container.node.yarn_memory_used == 2 * GB
        assert container.node.yarn_vcores_used == 3

    def test_release_frees_resources_and_redispatches(self):
        sim, cluster, rm = make_rm(num_slaves=1)
        node = cluster.nodes[0]
        # Fill the node with six 1 GB containers.
        grants = [rm.allocate(req()) for _ in range(6)]
        containers = [sim.run_until_complete(g) for g in grants]
        waiting = rm.allocate(req())
        sim.run(until=sim.now + 5 * ALLOCATION_LATENCY)
        assert not waiting.triggered  # no capacity yet
        rm.release_container(containers[0])
        got = sim.run_until_complete(waiting)
        assert got.node is node

    def test_double_release_rejected(self):
        sim, _cluster, rm = make_rm()
        container = sim.run_until_complete(rm.allocate(req()))
        rm.release_container(container)
        with pytest.raises(SimulationError):
            rm.release_container(container)

    def test_impossible_request_rejected_eagerly(self):
        _sim, _cluster, rm = make_rm()
        with pytest.raises(SimulationError):
            rm.allocate(req(mb=7 * 1024))  # exceeds the 6 GB node pool

    def test_cancel_pending_request(self):
        sim, cluster, rm = make_rm(num_slaves=1)
        for _ in range(6):
            sim.run_until_complete(rm.allocate(req()))
        r = req()
        rm.allocate(r)
        assert rm.cancel(r)
        assert not rm.cancel(r)

    def test_fifo_grant_order(self):
        sim, _cluster, rm = make_rm()
        g1 = rm.allocate(req())
        g2 = rm.allocate(req())
        c1 = sim.run_until_complete(g1)
        c2 = sim.run_until_complete(g2)
        assert c1.container_id < c2.container_id

    def test_usage_accounting(self):
        sim, _cluster, rm = make_rm()
        c = sim.run_until_complete(rm.allocate(req(mb=2048)))
        assert rm.app_memory_usage("a") == 2 * GB
        rm.release_container(c)
        assert rm.app_memory_usage("a") == 0

    def test_cluster_memory_utilization(self):
        sim, cluster, rm = make_rm(num_slaves=2)
        sim.run_until_complete(rm.allocate(req(mb=6 * 1024)))
        assert rm.cluster_memory_utilization() == pytest.approx(0.5)


class TestNodeManager:
    def test_launch_runs_task_and_completes_container(self):
        sim, cluster, rm = make_rm()
        container = sim.run_until_complete(rm.allocate(req()))
        nm = NodeManager(sim, container.node)

        def task():
            yield sim.timeout(3.0)
            return "done"

        proc = nm.launch(container, task())
        assert container.state is ContainerState.RUNNING
        assert nm.running_containers == 1
        result = sim.run_until_complete(proc)
        assert result == "done"
        assert container.state is ContainerState.COMPLETED
        assert nm.running_containers == 0

    def test_launch_on_wrong_node_rejected(self):
        sim, cluster, rm = make_rm(num_slaves=2)
        container = sim.run_until_complete(rm.allocate(req()))
        other = next(n for n in cluster.nodes if n is not container.node)
        nm = NodeManager(sim, other)
        with pytest.raises(SimulationError):
            nm.launch(container, iter(()))

    def test_cannot_launch_twice(self):
        sim, cluster, rm = make_rm()
        container = sim.run_until_complete(rm.allocate(req()))
        nm = NodeManager(sim, container.node)

        def task():
            yield sim.timeout(1.0)

        nm.launch(container, task())
        with pytest.raises(SimulationError):
            nm.launch(container, task())

    def test_finish_observer_called(self):
        sim, cluster, rm = make_rm()
        container = sim.run_until_complete(rm.allocate(req()))
        nm = NodeManager(sim, container.node)
        finished = []
        nm.on_container_finished.append(finished.append)

        def task():
            yield sim.timeout(1.0)

        sim.run_until_complete(nm.launch(container, task()))
        assert finished == [container]
