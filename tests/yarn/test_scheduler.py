"""Tests for container scheduling policies."""

import pytest

from repro.cluster.node import GB
from repro.cluster.topology import Cluster, ClusterSpec
from repro.sim import Simulator
from repro.yarn.fair_scheduler import FairScheduler
from repro.yarn.records import ContainerRequest, Priority, Resource
from repro.yarn.scheduler import FifoScheduler


def make_cluster(num_slaves=4, racks=(2, 2)):
    return Cluster(Simulator(), ClusterSpec(num_slaves=num_slaves, racks=racks))


def request(app="a", mb=1024, vcores=1, priority=Priority.MAP, preferred=()):
    return ContainerRequest(
        app_id=app,
        resource=Resource.of_mb(mb, vcores),
        priority=priority,
        preferred_nodes=tuple(preferred),
    )


class TestRecords:
    def test_resource_validation(self):
        with pytest.raises(ValueError):
            Resource(0, 1)
        with pytest.raises(ValueError):
            Resource(1024, 0)

    def test_fits_in(self):
        r = Resource.of_mb(1024, 2)
        assert r.fits_in(2 * GB, 4)
        assert not r.fits_in(512 * 1024**2, 4)
        assert not r.fits_in(2 * GB, 1)

    def test_request_ids_monotone(self):
        a, b = request(), request()
        assert b.request_id > a.request_id

    def test_priorities(self):
        assert Priority.REDUCE < Priority.MAP  # reduces preempt queue order


class TestFifoScheduler:
    def test_unknown_app_rejected(self):
        sched = FifoScheduler(make_cluster())
        with pytest.raises(KeyError):
            sched.enqueue(request())

    def test_arrival_order_within_priority(self):
        sched = FifoScheduler(make_cluster())
        sched.add_app("a")
        r1, r2 = request(), request()
        sched.enqueue(r1)
        sched.enqueue(r2)
        picked, _node = sched.assign_once()
        assert picked is r1

    def test_priority_beats_arrival(self):
        sched = FifoScheduler(make_cluster())
        sched.add_app("a")
        map_req = request(priority=Priority.MAP)
        red_req = request(priority=Priority.REDUCE)
        sched.enqueue(map_req)
        sched.enqueue(red_req)
        picked, _node = sched.assign_once()
        assert picked is red_req

    def test_data_local_placement_preferred(self):
        cluster = make_cluster()
        sched = FifoScheduler(cluster)
        sched.add_app("a")
        sched.enqueue(request(preferred=[3]))
        _req, node = sched.assign_once()
        assert node.node_id == 3

    def test_rack_local_fallback(self):
        cluster = make_cluster()
        # Fill the preferred node completely.
        full = cluster.nodes[3]
        full.reserve(full.yarn_memory_total, 1)
        sched = FifoScheduler(cluster)
        sched.add_app("a")
        sched.enqueue(request(preferred=[3]))
        _req, node = sched.assign_once()
        assert node.rack == full.rack and node.node_id != 3

    def test_skips_unsatisfiable_head(self):
        cluster = make_cluster()
        for n in cluster.nodes:
            n.reserve(n.yarn_memory_total - 512 * 1024**2, 1)
        sched = FifoScheduler(cluster)
        sched.add_app("a")
        big = request(mb=4096)
        small = request(mb=512)
        sched.enqueue(big)
        sched.enqueue(small)
        picked, _node = sched.assign_once()
        assert picked is small  # head-of-line big request skipped

    def test_none_when_nothing_fits(self):
        cluster = make_cluster()
        for n in cluster.nodes:
            n.reserve(n.yarn_memory_total, 1)
        sched = FifoScheduler(cluster)
        sched.add_app("a")
        sched.enqueue(request())
        assert sched.assign_once() is None

    def test_variable_sized_request_tracking(self):
        """The paper's hash map of different-sized container requests."""
        sched = FifoScheduler(make_cluster())
        sched.add_app("a")
        sched.enqueue(request(mb=1024))
        sched.enqueue(request(mb=1024))
        sched.enqueue(request(mb=2048, vcores=2))
        assert sched.requested_sizes[Resource.of_mb(1024, 1)] == 2
        assert sched.requested_sizes[Resource.of_mb(2048, 2)] == 1
        sched.assign_once()
        assert sched.requested_sizes[Resource.of_mb(1024, 1)] == 1

    def test_cancel(self):
        sched = FifoScheduler(make_cluster())
        sched.add_app("a")
        r = request()
        sched.enqueue(r)
        assert sched.cancel(r)
        assert not sched.cancel(r)
        assert sched.pending_count == 0

    def test_remove_app_clears_requests(self):
        sched = FifoScheduler(make_cluster())
        sched.add_app("a")
        sched.enqueue(request())
        sched.remove_app("a")
        assert sched.pending_count == 0


class TestFairScheduler:
    def test_starved_app_served_first(self):
        cluster = make_cluster()
        sched = FairScheduler(cluster)
        sched.add_app("rich")
        sched.add_app("poor")
        sched.on_allocated("rich", Resource.of_mb(4096, 4))
        r_rich = request(app="rich")
        r_poor = request(app="poor")
        sched.enqueue(r_rich)
        sched.enqueue(r_poor)
        picked, _node = sched.assign_once()
        assert picked is r_poor

    def test_weights_scale_shares(self):
        cluster = make_cluster()
        sched = FairScheduler(cluster)
        sched.add_app("heavy", weight=4.0)
        sched.add_app("light", weight=1.0)
        # heavy has 2 GB but weight 4 => share 0.5 GB; light has 1 GB.
        sched.on_allocated("heavy", Resource.of_mb(2048, 1))
        sched.on_allocated("light", Resource.of_mb(1024, 1))
        r_heavy = request(app="heavy")
        r_light = request(app="light")
        sched.enqueue(r_light)
        sched.enqueue(r_heavy)
        picked, _node = sched.assign_once()
        assert picked is r_heavy

    def test_release_accounting(self):
        sched = FairScheduler(make_cluster())
        sched.add_app("a")
        res = Resource.of_mb(1024, 1)
        sched.on_allocated("a", res)
        sched.on_released("a", res)
        assert sched.app_memory_usage["a"] == 0

    def test_over_release_raises(self):
        sched = FairScheduler(make_cluster())
        sched.add_app("a")
        with pytest.raises(RuntimeError):
            sched.on_released("a", Resource.of_mb(1024, 1))

    def test_invalid_weight(self):
        sched = FairScheduler(make_cluster())
        with pytest.raises(ValueError):
            sched.add_app("a", weight=0)
