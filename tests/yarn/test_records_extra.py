"""Additional coverage: containers, records, and scheduler accounting."""

import pytest

from repro.cluster.container import Container, ContainerState
from repro.cluster.node import GB, Node, NodeResources
from repro.sim import Simulator
from repro.yarn.records import ContainerRequest, Resource


@pytest.fixture
def node():
    return Node(Simulator(), 0, 0, NodeResources())


class TestContainer:
    def test_ids_unique_and_monotone(self, node):
        a = Container(node, 1 * GB, 1, "app")
        b = Container(node, 1 * GB, 1, "app")
        assert b.container_id > a.container_id

    def test_initial_state(self, node):
        c = Container(node, 1 * GB, 2, "app")
        assert c.state is ContainerState.ALLOCATED
        assert c.app_id == "app"

    def test_max_cores_follows_vcores(self, node):
        one = Container(node, 1 * GB, 1, "app")
        four = Container(node, 1 * GB, 4, "app")
        assert four.max_cores == pytest.approx(4 * one.max_cores)

    def test_quarter_core_per_vcore(self, node):
        c = Container(node, 1 * GB, 4, "app")
        assert c.max_cores == pytest.approx(1.0)  # 4 vcores x 0.25


class TestResourceRecords:
    def test_of_mb(self):
        r = Resource.of_mb(1536, 2)
        assert r.memory_bytes == 1536 * 1024**2
        assert r.vcores == 2

    def test_resources_hashable_for_size_map(self):
        # The paper's hash map of requested sizes requires hashability.
        sizes = {Resource.of_mb(1024, 1): 3, Resource.of_mb(2048, 2): 1}
        assert sizes[Resource.of_mb(1024, 1)] == 3

    def test_request_repr_mentions_size(self):
        req = ContainerRequest(app_id="a", resource=Resource.of_mb(1024, 1))
        assert "1024MB/1vc" in repr(req)

    def test_preferred_nodes_default_empty(self):
        req = ContainerRequest(app_id="a", resource=Resource.of_mb(512, 1))
        assert req.preferred_nodes == ()
