"""Tests for the MR app master: end-to-end jobs on a small cluster."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.experiments.harness import SimCluster
from repro.mapreduce.counters import Counter
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.workloads.datasets import DatasetSpec
from repro.yarn.app_master import WaveGate

MB = 1024**2


def small_cluster(seed=0):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
    )


def small_spec(sc, blocks=8, reducers=4, profile=None, config=None, slowstart=0.05):
    DatasetSpec("tiny", num_blocks=blocks).load(sc.hdfs, "/in")
    profile = profile or WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=0.0, partition_skew=0.0,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    return JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=reducers,
        base_config=config or Configuration(), slowstart=slowstart,
    )


class TestJobExecution:
    def test_job_completes_successfully(self):
        sc = small_cluster()
        result = sc.run_job(small_spec(sc))
        assert result.succeeded
        assert result.duration > 0
        assert len(result.stats_of(TaskType.MAP)) == 8
        assert len(result.stats_of(TaskType.REDUCE)) == 4

    def test_counters_aggregate(self):
        sc = small_cluster()
        result = sc.run_job(small_spec(sc))
        c = result.counters
        assert c[Counter.MAP_OUTPUT_RECORDS] > 0
        assert c[Counter.SHUFFLED_BYTES] == pytest.approx(
            c[Counter.MAP_OUTPUT_BYTES], rel=0.01
        )
        assert c[Counter.SPILLED_RECORDS] >= c[Counter.MAP_OUTPUT_RECORDS]

    def test_determinism_same_seed(self):
        # Two fresh, identically seeded setups must agree bit for bit.
        sc_a, sc_b = small_cluster(seed=3), small_cluster(seed=3)
        ra = sc_a.run_job(small_spec(sc_a))
        rb = sc_b.run_job(small_spec(sc_b))
        assert ra.duration == rb.duration
        assert ra.counters.snapshot() == rb.counters.snapshot()

    def test_different_seeds_differ(self):
        noisy = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_output_noise=0.1, partition_skew=0.3,
        )
        sc_a, sc_b = small_cluster(seed=3), small_cluster(seed=4)
        ra = sc_a.run_job(small_spec(sc_a, profile=noisy))
        rb = sc_b.run_job(small_spec(sc_b, profile=noisy))
        assert ra.duration != rb.duration

    def test_reduces_respect_slowstart(self):
        sc = small_cluster()
        result = sc.run_job(small_spec(sc, blocks=8, slowstart=1.0))
        map_end = max(s.end_time for s in result.stats_of(TaskType.MAP))
        red_start = min(s.start_time for s in result.stats_of(TaskType.REDUCE))
        assert red_start >= map_end - 1e-6

    def test_early_slowstart_overlaps_shuffle(self):
        sc = small_cluster()
        result = sc.run_job(small_spec(sc, blocks=16, slowstart=0.05))
        map_end = max(s.end_time for s in result.stats_of(TaskType.MAP))
        red_start = min(s.start_time for s in result.stats_of(TaskType.REDUCE))
        assert red_start < map_end

    def test_lethal_config_fails_attempts_but_job_terminates(self):
        # 300 MB user code + 614 MB buffer > 819 MB heap: every attempt
        # OOMs (the fallback clamp cannot know the user code's size).
        # The job must still terminate -- flagged unsuccessful -- rather
        # than deadlock waiting for slowstart.
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_output_noise=0.0, partition_skew=0.0,
            map_fixed_mem_bytes=300 * MB,
        )
        config = Configuration({P.MAP_MEMORY_MB: 1024, P.IO_SORT_MB: 614})
        sc = small_cluster()
        result = sc.run_job(small_spec(sc, profile=profile, config=config))
        assert result.counters[Counter.FAILED_TASK_ATTEMPTS] > 0
        assert not result.succeeded

    def test_larger_containers_reduce_parallelism(self):
        sc1 = small_cluster()
        r_small = sc1.run_job(small_spec(sc1, blocks=24))
        sc2 = small_cluster()
        big = Configuration({P.MAP_MEMORY_MB: 3072})
        r_big = sc2.run_job(small_spec(sc2, blocks=24, config=big))
        map_end_small = max(s.end_time for s in r_small.stats_of(TaskType.MAP))
        map_end_big = max(s.end_time for s in r_big.stats_of(TaskType.MAP))
        assert map_end_big > map_end_small


class TestWaveGate:
    def test_tasks_admitted_in_waves(self):
        sc = small_cluster()
        gate = WaveGate(map_wave_size=4)
        result = sc.run_job(small_spec(sc, blocks=8, reducers=2), gate=gate)
        waves = sorted({s.wave for s in result.stats_of(TaskType.MAP)})
        assert waves == [0, 1]

    def test_wave_k_finishes_before_k_plus_1_starts(self):
        sc = small_cluster()
        gate = WaveGate(map_wave_size=4)
        result = sc.run_job(small_spec(sc, blocks=8, reducers=2), gate=gate)
        maps = result.stats_of(TaskType.MAP)
        end_wave0 = max(s.end_time for s in maps if s.wave == 0)
        start_wave1 = min(s.start_time for s in maps if s.wave == 1)
        assert start_wave1 >= end_wave0 - 1e-9

    def test_invalid_wave_size(self):
        with pytest.raises(ValueError):
            WaveGate(map_wave_size=0)

    def test_default_gate_single_wave(self):
        sc = small_cluster()
        result = sc.run_job(small_spec(sc, blocks=8))
        assert {s.wave for s in result.task_stats} == {-1}


class TestMultiJob:
    def test_two_jobs_share_cluster_fifo(self):
        sc = small_cluster()
        spec1 = small_spec(sc, blocks=8, reducers=2)
        DatasetSpec("tiny2", num_blocks=8).load(sc.hdfs, "/in2")
        spec2 = JobSpec(
            name="t2", workload=spec1.workload, input_path="/in2", num_reducers=2
        )
        ams = [sc.submit(spec1), sc.submit(spec2)]
        results = sc.run_jobs(ams)
        assert all(r.succeeded for r in results)

    def test_fair_scheduler_interleaves(self):
        sc = SimCluster(
            seed=0,
            cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
            scheduler="fair",
            start_monitors=False,
        )
        spec1 = small_spec(sc, blocks=16, reducers=2)
        DatasetSpec("tiny2", num_blocks=16).load(sc.hdfs, "/in2")
        spec2 = JobSpec(
            name="t2", workload=spec1.workload, input_path="/in2", num_reducers=2
        )
        ams = [sc.submit(spec1), sc.submit(spec2)]
        results = sc.run_jobs(ams)
        # Fair sharing: the second job must start long before the first ends.
        first_end = results[0].end_time
        second_start = min(s.start_time for s in results[1].task_stats)
        assert second_start < first_end * 0.5
