"""Tests for the online tuner (both strategies, end to end)."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.core.hill_climbing import HillClimbSettings
from repro.core.knowledge_base import TuningKnowledgeBase
from repro.core.tuner import (
    MAP_TUNABLE,
    REDUCE_TUNABLE,
    OnlineTuner,
    TunerSettings,
    TuningStrategy,
)
from repro.experiments.harness import SimCluster
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.workloads.datasets import DatasetSpec

MB = 1024**2

SMALL_HC = HillClimbSettings(m=6, n=4, global_search_limit=2)


def small_cluster(seed=0):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
    )


def small_spec(sc, blocks=40, reducers=8):
    DatasetSpec(f"d{blocks}", num_blocks=blocks).load(sc.hdfs, f"/in{blocks}")
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=0.02, partition_skew=0.1,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    return JobSpec(
        name="t", workload=profile, input_path=f"/in{blocks}", num_reducers=reducers
    )


class TestSubspaces:
    def test_map_and_reduce_subspaces_disjoint_except_shared(self):
        shared = set(MAP_TUNABLE) & set(REDUCE_TUNABLE)
        assert shared == set()  # io.sort.factor lives in the map search

    def test_all_13_minus_shared_covered(self):
        covered = set(MAP_TUNABLE) | set(REDUCE_TUNABLE)
        assert len(covered) == 13


class TestAggressive:
    def run_tuning(self, seed=0, blocks=60):
        sc = small_cluster(seed)
        spec = small_spec(sc, blocks=blocks)
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(hill_climb=SMALL_HC, use_knowledge_base=False),
            rng=np.random.default_rng(seed),
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion)
        return sc, spec, tuner, result

    def test_job_completes_under_tuning(self):
        _sc, _spec, _tuner, result = self.run_tuning()
        assert result.succeeded

    def test_tasks_run_varied_configs(self):
        _sc, _spec, _tuner, result = self.run_tuning()
        sort_mbs = {s.config[P.IO_SORT_MB] for s in result.stats_of(TaskType.MAP)}
        assert len(sort_mbs) > 3  # the search actually tried configs

    def test_waves_are_sequential(self):
        _sc, _spec, _tuner, result = self.run_tuning()
        maps = result.stats_of(TaskType.MAP)
        by_wave = {}
        for s in maps:
            by_wave.setdefault(s.wave, []).append(s)
        waves = sorted(by_wave)
        for earlier, later in zip(waves, waves[1:]):
            end_prev = max(s.end_time for s in by_wave[earlier])
            start_next = min(s.start_time for s in by_wave[later])
            assert start_next >= end_prev - 1e-9

    def test_recommended_config_is_feasible(self):
        from repro.core.configuration import is_feasible

        _sc, spec, tuner, _result = self.run_tuning()
        cfg = tuner.recommended_config(spec.job_id)
        assert is_feasible(cfg)

    def test_finalize_records_knowledge(self):
        _sc, spec, tuner, result = self.run_tuning()
        tuner.finalize_job(spec.job_id, result)
        assert len(tuner.knowledge_base) == 1

    def test_rule_log_populated(self):
        _sc, spec, tuner, _result = self.run_tuning()
        assert tuner.rule_log(spec.job_id)

    def test_double_attach_rejected(self):
        sc = small_cluster()
        spec = small_spec(sc)
        tuner = OnlineTuner(TuningStrategy.AGGRESSIVE, rng=np.random.default_rng(0))
        tuner.attach_job(spec)
        with pytest.raises(ValueError):
            tuner.attach_job(spec)

    def test_knowledge_base_seed_used(self):
        kb = TuningKnowledgeBase()
        seed_cfg = Configuration({P.IO_SORT_MB: 160})
        sc = small_cluster()
        spec = small_spec(sc)
        input_bytes = sc.hdfs.get(spec.input_path).size_bytes
        kb.record("t", input_bytes, seed_cfg, cost=1.0, job_duration=100)
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(hill_climb=SMALL_HC, use_knowledge_base=True),
            rng=np.random.default_rng(0),
            knowledge_base=kb,
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion)
        # The seeded value must appear among evaluated map configs.
        tried = {s.config[P.IO_SORT_MB] for s in result.stats_of(TaskType.MAP)}
        assert 160 in tried


class TestConservative:
    def run_conservative(self, seed=0, blocks=60):
        sc = small_cluster(seed)
        spec = small_spec(sc, blocks=blocks)
        tuner = OnlineTuner(
            TuningStrategy.CONSERVATIVE,
            settings=TunerSettings(conservative_window=6, use_knowledge_base=False),
            rng=np.random.default_rng(seed),
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion)
        return sc, spec, tuner, result

    def test_job_completes(self):
        _sc, _spec, _tuner, result = self.run_conservative()
        assert result.succeeded

    def test_scheduling_never_delayed(self):
        """Conservative tuning must not gate task launches into waves."""
        _sc, _spec, _tuner, result = self.run_conservative()
        assert {s.wave for s in result.task_stats} == {-1}

    def test_config_evolves_during_run(self):
        _sc, _spec, _tuner, result = self.run_conservative()
        maps = sorted(result.stats_of(TaskType.MAP), key=lambda s: s.start_time)
        first_cfg = maps[0].config[P.IO_SORT_MB]
        last_cfg = maps[-1].config[P.IO_SORT_MB]
        assert first_cfg != last_cfg  # rules moved io.sort.mb

    def test_not_slower_than_default(self):
        sc_d = small_cluster()
        default_result = sc_d.run_job(small_spec(sc_d, blocks=60))
        _sc, _spec, _tuner, tuned_result = self.run_conservative(blocks=60)
        assert tuned_result.duration <= default_result.duration * 1.05

    def test_recommended_config_reflects_rules(self):
        _sc, spec, tuner, _result = self.run_conservative()
        cfg = tuner.recommended_config(spec.job_id)
        assert cfg[P.SORT_SPILL_PERCENT] == pytest.approx(0.99)
        assert cfg[P.MERGE_INMEM_THRESHOLD] == 0
