"""Tests for the Section-6 tuning rules."""

import numpy as np
import pytest

from repro.core import parameters as P
from repro.core.configuration import HEAP_FRACTION, Configuration
from repro.core.neighborhood import Bounds
from repro.core.parameters import PARAMETER_SPACE
from repro.core.rules import (
    ContainerMemoryRule,
    OomBackoffRule,
    ParallelCopiesRule,
    ReduceBufferRule,
    RuleContext,
    SortBufferRule,
    SortFactorRule,
    SpillPercentRule,
    VcoreRule,
    default_rules,
)
from repro.core.rules.dependencies import DependencyRule, violations
from repro.core.tuner import MAP_TUNABLE, REDUCE_TUNABLE
from repro.mapreduce.jobspec import TaskId, TaskType
from repro.monitor.statistics import TaskStats

MB = 1024**2


def stats(
    task_type=TaskType.MAP,
    duration=20.0,
    mem_util=0.5,
    cpu_util=0.5,
    spilled=100,
    map_out=100,
    map_out_bytes=150 * MB,
    shuffled=0.0,
    config=None,
    failed=False,
    reason="",
    index=0,
):
    container = 1024 * MB
    config = dict(Configuration(config or {}).as_dict())
    alloc = 1.0
    return TaskStats(
        task_id=TaskId("job_r", task_type, index),
        task_type=task_type,
        node_id=0,
        attempt=1,
        config=config,
        start_time=0.0,
        end_time=duration,
        cpu_seconds=cpu_util * duration * alloc,
        allocated_cores=alloc,
        working_set_bytes=mem_util * container,
        container_memory_bytes=container,
        spilled_records=spilled,
        map_output_records=map_out,
        map_output_bytes=map_out_bytes,
        reduce_input_records=int(shuffled // 100) if shuffled else 0,
        shuffled_bytes=shuffled,
        failed=failed,
        failure_reason=reason,
    )


def ctx_for(task_type, window, history=None, names=None):
    if names is None:
        names = MAP_TUNABLE if task_type is TaskType.MAP else REDUCE_TUNABLE
    space = PARAMETER_SPACE.subspace(names)
    return RuleContext(
        task_type=task_type,
        space=space,
        bounds=Bounds(len(space)),
        window=window,
        history=history if history is not None else list(window),
        rng=np.random.default_rng(0),
        memo={},
    )


class TestSortBufferRule:
    def test_bounds_anchor_at_output_size(self):
        window = [stats(map_out_bytes=200 * MB, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        notes = SortBufferRule().adjust_bounds(ctx)
        assert notes
        dim = ctx.dim(P.IO_SORT_MB)
        lo = ctx.space.spec(P.IO_SORT_MB).decode(ctx.bounds.lo[dim])
        hi = ctx.space.spec(P.IO_SORT_MB).decode(ctx.bounds.hi[dim])
        assert 190 <= lo <= 230
        assert hi >= lo

    def test_no_outputs_no_adjustment(self):
        window = [stats(map_out_bytes=0.0)]
        ctx = ctx_for(TaskType.MAP, window)
        assert SortBufferRule().adjust_bounds(ctx) == []

    def test_reduce_window_ignored(self):
        ctx = ctx_for(TaskType.REDUCE, [stats(task_type=TaskType.REDUCE)])
        assert SortBufferRule().adjust_bounds(ctx) == []

    def test_conservative_sets_buffer_to_estimate(self):
        window = [stats(map_out_bytes=180 * MB, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = SortBufferRule().conservative_update(ctx, Configuration())
        assert changes[P.IO_SORT_MB] >= 180

    def test_conservative_grows_container_when_needed(self):
        window = [stats(map_out_bytes=600 * MB, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = SortBufferRule().conservative_update(ctx, Configuration())
        assert changes.get(P.MAP_MEMORY_MB, 0) > 1024

    def test_conservative_respects_user_code_memory(self):
        # Tasks whose working set shows big user state must keep heap room.
        window = [
            stats(map_out_bytes=180 * MB, mem_util=0.8, config={P.IO_SORT_MB: 100}, index=i)
            for i in range(4)
        ]
        ctx = ctx_for(TaskType.MAP, window)
        cfg = Configuration()
        changes = SortBufferRule().conservative_update(ctx, cfg)
        new = cfg.updated(changes)
        heap_mb = new[P.MAP_MEMORY_MB] * HEAP_FRACTION
        fixed_mb = ctx.estimated_map_fixed_mem() / MB
        assert new[P.IO_SORT_MB] + fixed_mb <= heap_mb


class TestSpillPercentRule:
    def test_pins_high_when_buffer_sufficient(self):
        window = [stats(spilled=100, map_out=100, map_out_bytes=50 * MB, index=i) for i in range(3)]
        ctx = ctx_for(TaskType.MAP, window)
        SpillPercentRule().adjust_bounds(ctx)
        dim = ctx.dim(P.SORT_SPILL_PERCENT)
        pinned = ctx.space.spec(P.SORT_SPILL_PERCENT).decode(ctx.bounds.lo[dim])
        assert pinned == pytest.approx(0.99, abs=0.01)

    def test_resets_to_default_when_spills_unavoidable(self):
        # Map outputs beyond the largest feasible sort buffer (1.6 GB):
        # spilling is structural, so early-spill pipelining wins.
        window = [
            stats(spilled=300, map_out=100, map_out_bytes=1700 * MB, index=i)
            for i in range(3)
        ]
        ctx = ctx_for(TaskType.MAP, window)
        SpillPercentRule().adjust_bounds(ctx)
        dim = ctx.dim(P.SORT_SPILL_PERCENT)
        pinned = ctx.space.spec(P.SORT_SPILL_PERCENT).decode(ctx.bounds.lo[dim])
        assert pinned == pytest.approx(0.8, abs=0.01)

    def test_conservative_value(self):
        window = [stats(map_out_bytes=50 * MB, index=i) for i in range(3)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = SpillPercentRule().conservative_update(ctx, Configuration())
        assert changes[P.SORT_SPILL_PERCENT] == 0.99


class TestContainerMemoryRule:
    def test_map_bounds_anchor_at_need(self):
        window = [
            stats(map_out_bytes=150 * MB, mem_util=0.45, config={P.IO_SORT_MB: 100}, index=i)
            for i in range(4)
        ]
        ctx = ctx_for(TaskType.MAP, window)
        notes = ContainerMemoryRule().adjust_bounds(ctx)
        assert notes
        dim = ctx.dim(P.MAP_MEMORY_MB)
        assert ctx.bounds.lo[dim] > 0.0
        assert ctx.bounds.hi[dim] < 1.0

    def test_reduce_bounds_need_shuffle_estimates(self):
        ctx = ctx_for(TaskType.REDUCE, [stats(task_type=TaskType.REDUCE, shuffled=0.0)])
        assert ContainerMemoryRule().adjust_bounds(ctx) == []

    def test_conservative_shrinks_underutilized(self):
        window = [stats(mem_util=0.3, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = ContainerMemoryRule().conservative_update(ctx, Configuration())
        # rng(0) first draw < 0.8, so the lower value is tried.
        assert changes.get(P.MAP_MEMORY_MB, 1024) < 1024

    def test_conservative_grows_overutilized(self):
        window = [stats(mem_util=0.97, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = ContainerMemoryRule().conservative_update(ctx, Configuration())
        assert changes.get(P.MAP_MEMORY_MB, 0) > 1024


class TestReduceBufferRule:
    def test_threshold_pinned_to_zero(self):
        ctx = ctx_for(TaskType.REDUCE, [stats(task_type=TaskType.REDUCE, shuffled=100 * MB)])
        notes = ReduceBufferRule().adjust_bounds(ctx)
        assert any("inmem.threshold" in n for n in notes)
        dim = ctx.dim(P.MERGE_INMEM_THRESHOLD)
        assert ctx.bounds.lo[dim] == ctx.bounds.hi[dim]

    def test_conservative_sizes_buffers_to_input(self):
        window = [
            stats(task_type=TaskType.REDUCE, shuffled=400 * MB, index=i) for i in range(4)
        ]
        ctx = ctx_for(TaskType.REDUCE, window)
        changes = ReduceBufferRule().conservative_update(ctx, Configuration())
        assert P.SHUFFLE_INPUT_BUFFER_PERCENT in changes
        assert changes[P.MERGE_INMEM_THRESHOLD] == 0.0

    def test_conservative_merge_equals_buffer_when_fits(self):
        window = [
            stats(task_type=TaskType.REDUCE, shuffled=200 * MB, index=i) for i in range(4)
        ]
        ctx = ctx_for(TaskType.REDUCE, window)
        changes = ReduceBufferRule().conservative_update(ctx, Configuration())
        assert changes[P.SHUFFLE_MERGE_PERCENT] == pytest.approx(
            changes[P.SHUFFLE_INPUT_BUFFER_PERCENT]
        )

    def test_conservative_gap_when_not_fitting(self):
        window = [
            stats(task_type=TaskType.REDUCE, shuffled=5000 * MB, index=i) for i in range(4)
        ]
        ctx = ctx_for(TaskType.REDUCE, window)
        cfg = Configuration()  # 1 GB reduce: 5 GB cannot fit even if grown
        changes = ReduceBufferRule().conservative_update(ctx, cfg)
        ibp = changes[P.SHUFFLE_INPUT_BUFFER_PERCENT]
        assert changes[P.SHUFFLE_MERGE_PERCENT] == pytest.approx(ibp - 0.04)

    def test_map_window_ignored(self):
        ctx = ctx_for(TaskType.MAP, [stats()])
        assert ReduceBufferRule().conservative_update(ctx, Configuration()) == {}


class TestCpuRules:
    def test_vcores_increase_when_saturated(self):
        window = [stats(cpu_util=0.99, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = VcoreRule().conservative_update(ctx, Configuration())
        assert changes[P.MAP_CPU_VCORES] == 2

    def test_vcores_decrease_when_idle(self):
        window = [stats(cpu_util=0.1, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = VcoreRule().conservative_update(
            ctx, Configuration({P.MAP_CPU_VCORES: 3})
        )
        assert changes[P.MAP_CPU_VCORES] == 2

    def test_vcores_no_change_in_between(self):
        window = [stats(cpu_util=0.6, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        assert VcoreRule().conservative_update(ctx, Configuration()) == {}

    def test_parallelcopies_increments_of_ten(self):
        window = [stats(task_type=TaskType.REDUCE, shuffled=100 * MB, index=i) for i in range(4)]
        ctx = ctx_for(TaskType.REDUCE, window)
        changes = ParallelCopiesRule().conservative_update(ctx, Configuration())
        assert changes[P.SHUFFLE_PARALLELCOPIES] == 15

    def test_parallelcopies_stops_without_improvement(self):
        rule = ParallelCopiesRule()
        ctx = ctx_for(TaskType.REDUCE, [stats(task_type=TaskType.REDUCE, duration=20, shuffled=MB)])
        cfg = Configuration()
        rule.conservative_update(ctx, cfg)  # first bump, remembers t=20
        # Second window: same duration => stop flag set, no change.
        ctx.window = [stats(task_type=TaskType.REDUCE, duration=20, shuffled=MB, index=1)]
        assert rule.conservative_update(ctx, cfg) == {}
        # Even a later improving window stays stopped.
        ctx.window = [stats(task_type=TaskType.REDUCE, duration=5, shuffled=MB, index=2)]
        assert rule.conservative_update(ctx, cfg) == {}

    def test_parallelcopies_keeps_climbing_while_improving(self):
        rule = ParallelCopiesRule()
        ctx = ctx_for(TaskType.REDUCE, [stats(task_type=TaskType.REDUCE, duration=20, shuffled=MB)])
        cfg = Configuration()
        first = rule.conservative_update(ctx, cfg)
        ctx.window = [stats(task_type=TaskType.REDUCE, duration=10, shuffled=MB, index=1)]
        second = rule.conservative_update(ctx, cfg.updated(first))
        assert second[P.SHUFFLE_PARALLELCOPIES] == 25

    def test_sort_factor_increments_of_twenty(self):
        window = [stats(index=i) for i in range(4)]
        ctx = ctx_for(TaskType.MAP, window)
        changes = SortFactorRule().conservative_update(ctx, Configuration())
        assert changes[P.IO_SORT_FACTOR] == 30


class TestOomBackoff:
    def test_grows_memory_on_oom(self):
        window = [stats(failed=True, reason="OutOfMemory: boom")]
        ctx = ctx_for(TaskType.MAP, window)
        changes = OomBackoffRule().conservative_update(ctx, Configuration())
        assert changes[P.MAP_MEMORY_MB] > 1024
        assert changes[P.IO_SORT_MB] < 100

    def test_non_oom_failures_ignored(self):
        window = [stats(failed=True, reason="disk error")]
        ctx = ctx_for(TaskType.MAP, window)
        assert OomBackoffRule().conservative_update(ctx, Configuration()) == {}

    def test_reduce_oom_grows_reduce_memory(self):
        window = [stats(task_type=TaskType.REDUCE, failed=True, reason="OutOfMemory")]
        ctx = ctx_for(TaskType.REDUCE, window)
        changes = OomBackoffRule().conservative_update(ctx, Configuration())
        assert changes[P.REDUCE_MEMORY_MB] > 1024


class TestDependencyRule:
    def test_reports_violations(self):
        cfg = Configuration({P.MAP_MEMORY_MB: 512, P.IO_SORT_MB: 1600})
        assert violations(cfg)

    def test_rule_returns_clamp_deltas(self):
        cfg = Configuration({P.MAP_MEMORY_MB: 512, P.IO_SORT_MB: 1600})
        ctx = ctx_for(TaskType.MAP, [stats()])
        changes = DependencyRule().conservative_update(ctx, cfg)
        assert P.IO_SORT_MB in changes

    def test_feasible_config_no_changes(self):
        ctx = ctx_for(TaskType.MAP, [stats()])
        assert DependencyRule().conservative_update(ctx, Configuration()) == {}


def test_default_rules_order_starts_with_oom_backoff():
    rules = default_rules()
    assert isinstance(rules[0], OomBackoffRule)
    assert len(rules) == 8
