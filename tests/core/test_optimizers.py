"""Tests for the pluggable optimizer backends and their shared protocol.

Covers the backend registry/factory, protocol conformance and
determinism for every backend, and the edge cases the online tuner
leans on: empty waves, all-infeasible proposals, rollback without a
known-good configuration, and SPSA perturbations pinned against
parameter bounds.
"""

import numpy as np
import pytest

from repro.core import parameters as P
from repro.core.cost import FAILURE_COST
from repro.core.hill_climbing import GrayBoxHillClimber, HillClimbSettings
from repro.core.optimizers import (
    DEFAULT_OPTIMIZER,
    OPTIMIZER_BACKENDS,
    Optimizer,
    Sample,
    SearchPhase,
    WaveOptimizer,
    make_optimizer,
    optimizer_settings,
)
from repro.core.optimizers.lhs import PureLhsOptimizer
from repro.core.optimizers.random_search import (
    RandomSearchOptimizer,
    RandomSearchSettings,
)
from repro.core.optimizers.spsa import SpsaOptimizer, SpsaSettings
from repro.core.parameters import PARAMETER_SPACE

BACKEND_CLASSES = {
    "hill_climb": GrayBoxHillClimber,
    "spsa": SpsaOptimizer,
    "random": RandomSearchOptimizer,
    "lhs": PureLhsOptimizer,
}

#: Small-budget settings so every backend terminates in a few waves.
SMALL_SETTINGS = {
    "hill_climb": HillClimbSettings(m=6, n=4, global_search_limit=2),
    "spsa": SpsaSettings(pairs=1, iterations=4, patience=2),
    "random": RandomSearchSettings(wave_size=6, patience=2, max_waves=5),
    "lhs": RandomSearchSettings(wave_size=6, patience=2, max_waves=5),
}


def subspace():
    return PARAMETER_SPACE.subspace([P.IO_SORT_MB, P.SORT_SPILL_PERCENT])


def make(backend, seed=7, settings=None, seed_point=None):
    return make_optimizer(
        backend,
        subspace(),
        np.random.default_rng(seed),
        settings if settings is not None else SMALL_SETTINGS[backend],
        seed_point=seed_point,
    )


def drive(opt, objective, max_batches=300):
    """Drive an async optimizer to termination with a sync objective."""
    batches = 0
    while not opt.finished:
        samples = opt.propose()
        if not samples:
            break
        for s in opt.pending_samples():
            opt.observe(s.sample_id, objective(s.point))
        batches += 1
        assert batches < max_batches, "optimizer failed to terminate"
    return batches


def bowl(point):
    return float(np.sum((point - 0.4) ** 2))


class TestRegistry:
    def test_registry_names(self):
        assert OPTIMIZER_BACKENDS == ("hill_climb", "spsa", "random", "lhs")
        assert DEFAULT_OPTIMIZER == "hill_climb"

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_factory_builds_expected_class(self, backend):
        opt = make(backend)
        assert type(opt) is BACKEND_CLASSES[backend]
        assert isinstance(opt, Optimizer)
        assert isinstance(opt, WaveOptimizer)

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_factory_default_settings(self, backend):
        opt = make_optimizer(backend, subspace(), np.random.default_rng(0))
        assert not opt.finished

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown optimizer backend"):
            make_optimizer("bayesian", subspace(), np.random.default_rng(0))
        with pytest.raises(ValueError, match="unknown optimizer backend"):
            optimizer_settings("bayesian")

    def test_mismatched_settings_rejected(self):
        with pytest.raises(TypeError, match="expects SpsaSettings"):
            make_optimizer(
                "spsa", subspace(), np.random.default_rng(0), HillClimbSettings()
            )

    def test_optimizer_settings_builder(self):
        st = optimizer_settings("spsa", {"pairs": 3})
        assert isinstance(st, SpsaSettings) and st.pairs == 3
        assert isinstance(optimizer_settings("lhs"), RandomSearchSettings)
        assert isinstance(optimizer_settings("hill_climb"), HillClimbSettings)


class TestProtocolConformance:
    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_terminates_and_scores(self, backend):
        opt = make(backend)
        drive(opt, bowl)
        assert opt.finished
        assert opt.best_cost() is not None
        assert opt.best_point() is not None
        assert opt.samples_proposed > 0
        assert opt.observations >= opt.samples_proposed
        config = opt.best_config()
        for name in opt.space.names:
            assert name in config.as_dict()

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_same_rng_seed_is_deterministic(self, backend):
        a, b = make(backend, seed=11), make(backend, seed=11)
        drive(a, bowl)
        drive(b, bowl)
        assert a.best_cost() == b.best_cost()
        assert np.array_equal(a.best_point(), b.best_point())
        assert a.samples_proposed == b.samples_proposed

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_cost_trajectory_is_monotone(self, backend):
        opt = make(backend)
        drive(opt, bowl)
        costs = [c for _n, c in opt.cost_trajectory]
        assert costs, "no trajectory checkpoints recorded"
        assert costs == sorted(costs, reverse=True)
        observations = [n for n, _c in opt.cost_trajectory]
        assert observations == sorted(observations)

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_samples_stay_inside_bounds(self, backend):
        opt = make(backend)
        lo, hi = opt.bounds.lo.copy(), opt.bounds.hi.copy()
        for _ in range(3):
            samples = opt.propose()
            if not samples:
                break
            for s in samples:
                assert np.all(s.point >= lo - 1e-12)
                assert np.all(s.point <= hi + 1e-12)
                opt.observe(s.sample_id, bowl(s.point))

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_unknown_sample_id_raises(self, backend):
        opt = make(backend)
        opt.propose()
        with pytest.raises(KeyError):
            opt.observe(999_999_999, 1.0)


class TestEdgeCases:
    def test_empty_wave_terminates_search(self):
        class Exhausted(RandomSearchOptimizer):
            def _make_batch(self):
                return []

        opt = Exhausted(subspace(), np.random.default_rng(0))
        assert opt.propose() == []
        assert opt.finished
        assert opt.best_cost() is None
        # Termination is sticky: later proposes stay empty.
        assert opt.propose() == []

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_all_infeasible_wave_advances_search(self, backend):
        # The tuner auto-prices samples in known-infeasible regions at
        # FAILURE_COST; a wave where *every* sample is priced that way
        # must still advance (or finish) rather than wedge the search.
        opt = make(backend)
        drive(opt, lambda point: FAILURE_COST)
        assert opt.finished
        assert opt.best_cost() == FAILURE_COST

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_rollback_without_known_good_config(self, backend):
        opt = make(backend)
        # Nothing proposed yet: no batch, no incumbent.
        assert opt.rollback() is False
        samples = opt.propose()
        assert samples
        # Wave in flight but never observed: still no known-good point.
        assert opt.rollback() is False
        assert opt.pending_samples() == samples

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_rollback_with_incumbent_voids_wave(self, backend):
        opt = make(backend)
        for s in opt.propose():
            opt.observe(s.sample_id, bowl(s.point))
        if opt.finished:  # a one-wave budget cannot roll back
            pytest.skip("backend finished within one wave")
        second = opt.propose()
        opt.observe(second[0].sample_id, 0.5)
        events = []
        opt.decision_listeners.append(lambda d, info: events.append(d))
        assert opt.rollback() is True
        assert "rollback" in events
        # The voided wave's partial observations are discarded and a
        # fresh wave is drawn around the surviving incumbent.
        assert opt.best_cost() is not None
        replacement = opt.propose()
        assert replacement
        assert {s.sample_id for s in replacement}.isdisjoint(
            {s.sample_id for s in second}
        )

    @pytest.mark.parametrize("backend", OPTIMIZER_BACKENDS)
    def test_infeasible_marking_round_trip(self, backend):
        opt = make(backend)
        samples = opt.propose()
        target = samples[0]
        opt.mark_infeasible(target.sample_id)
        assert opt.is_infeasible(target.point)
        assert opt.infeasible_regions == 1
        # Re-marking the same point records the mark but not a region.
        opt.mark_infeasible(target.sample_id)
        assert opt.infeasible_regions == 1
        assert opt.infeasible_marks == 2


class TestSpsaClipping:
    def test_perturbations_clipped_at_bounds(self):
        # Seed theta at the lower-left corner: every minus-perturbation
        # would leave the box and must be clipped back onto it.
        space = subspace()
        opt = SpsaOptimizer(
            space,
            np.random.default_rng(3),
            SpsaSettings(pairs=2, iterations=3),
            seed_point=np.zeros(len(space)),
        )
        samples = opt.propose()
        for s in samples:
            assert np.all(s.point >= 0.0) and np.all(s.point <= 1.0)
        incumbent = [s for s in samples if s.incumbent]
        assert len(incumbent) == 1
        assert np.array_equal(incumbent[0].point, np.zeros(len(space)))

    def test_gradient_survives_one_sided_clipping(self):
        # With theta on the boundary the plus/minus pair is asymmetric
        # (minus clips onto theta); the gradient must divide by the
        # actual displacement and theta must stay finite and in-box.
        space = subspace()
        opt = SpsaOptimizer(
            space,
            np.random.default_rng(3),
            SpsaSettings(pairs=1, iterations=2),
            seed_point=np.zeros(len(space)),
        )
        for s in opt.propose():
            opt.observe(s.sample_id, bowl(s.point))
        assert np.all(np.isfinite(opt._theta))
        assert np.all(opt._theta >= 0.0) and np.all(opt._theta <= 1.0)

    def test_fully_clipped_pair_contributes_no_gradient(self):
        # Degenerate bounds: lo == hi on every dimension, so plus and
        # minus clip onto the same point and the pair carries no
        # signal.  The update must be a no-op, not a 0/0.
        space = subspace()
        opt = SpsaOptimizer(
            space, np.random.default_rng(5), SpsaSettings(pairs=1, iterations=2)
        )
        opt.bounds.lo[:] = 0.5
        opt.bounds.hi[:] = 0.5
        for s in opt.propose():
            opt.observe(s.sample_id, 1.0)
        assert np.all(np.isfinite(opt._theta))
        assert np.allclose(opt._theta, 0.5)

    def test_seed_point_outside_bounds_is_clipped(self):
        space = subspace()
        opt = SpsaOptimizer(
            space,
            np.random.default_rng(0),
            SpsaSettings(),
            seed_point=np.full(len(space), 7.0),
        )
        opt.propose()
        assert np.all(opt._theta <= 1.0)


class TestSampleBasics:
    def test_sample_cost_is_mean_of_replicas(self):
        s = Sample(1, np.zeros(2), SearchPhase.GLOBAL)
        assert s.cost is None
        s.costs.extend([1.0, 3.0])
        assert s.cost == 2.0

    def test_ids_are_unique_across_backends(self):
        ids = set()
        for backend in OPTIMIZER_BACKENDS:
            for s in make(backend).propose():
                assert s.sample_id not in ids
                ids.add(s.sample_id)
