"""Regression tests for tuner/app-master interaction bugs.

Each test here pins a failure mode found while integrating the tuner
with the job lifecycle; they are deliberately scenario-shaped.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core import parameters as P
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.workloads.datasets import DatasetSpec

MB = 1024**2


def small_cluster(seed=0):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
    )


def spec_with(sc, blocks, reducers, path=None):
    path = path or f"/in-{blocks}-{reducers}"
    DatasetSpec(f"d-{blocks}-{reducers}", num_blocks=blocks).load(sc.hdfs, path)
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0,
        map_output_noise=0.05, partition_skew=0.1,
    )
    return JobSpec(name="t", workload=profile, input_path=path, num_reducers=reducers)


class TestBatchStarvation:
    """A job whose task count cannot fill the search batch must not hang.

    Found as a deadlock: the last map waited at the tuner gate for a
    wave that could never complete (all other lifecycles had finished),
    while every reducer waited for that map's output.
    """

    @pytest.mark.parametrize("blocks,reducers", [(7, 3), (26, 2), (3, 1)])
    def test_tiny_jobs_terminate(self, blocks, reducers):
        sc = small_cluster()
        spec = spec_with(sc, blocks, reducers)
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(
                hill_climb=HillClimbSettings(m=25, n=16),
                use_knowledge_base=False,
            ),
            rng=np.random.default_rng(0),
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion, max_events=2_000_000)
        assert result.succeeded

    def test_single_reducer_job_terminates(self):
        # BBP's shape: many maps, exactly one reducer (its reduce search
        # can never evaluate more than one sample).
        sc = small_cluster()
        spec = spec_with(sc, 30, 1)
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(use_knowledge_base=False),
            rng=np.random.default_rng(1),
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion, max_events=2_000_000)
        assert result.succeeded

    def test_starved_search_still_recommends_something(self):
        sc = small_cluster()
        spec = spec_with(sc, 10, 2)
        tuner = OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(use_knowledge_base=False),
            rng=np.random.default_rng(2),
        )
        am = tuner.submit(sc, spec)
        sc.sim.run_until_complete(am.completion)
        cfg = tuner.recommended_config(spec.job_id)
        assert cfg is not None  # best-so-far, per Section 2.3's caveat


class TestLaunchTimeRefresh:
    """Job-level config changes must reach tasks whose container request
    was already queued (configs are read at launch, not at request)."""

    def test_mid_job_update_reaches_later_tasks(self):
        from repro.core.configurator import DynamicConfigurator

        sc = small_cluster()
        spec = spec_with(sc, 60, 2)
        configurator = DynamicConfigurator()
        configurator.register_job(spec)

        def update():
            configurator.set_job_parameters(spec.job_id, {P.IO_SORT_MB: 300})

        # Mid-map-phase: after the first wave launches, before the last.
        sc.sim.call_at(10.0, update)
        result = sc.run_job(spec, config_provider=configurator)
        values = {s.config[P.IO_SORT_MB] for s in result.stats_of(TaskType.MAP)}
        assert 100 in values  # early tasks ran the default
        assert 300 in values  # later tasks picked up the update


class TestReduceRampUp:
    def test_reducers_capped_while_maps_pending(self):
        """While maps remain, reduce containers stay within ~half the
        cluster's memory (MRAppMaster's ramp-up limit)."""
        sc = small_cluster()
        spec = spec_with(sc, 60, 40)
        am = sc.submit(spec)
        limit = 0.5 * sc.cluster.total_yarn_memory
        violations = []
        while not am.completion.triggered:
            sc.sim.step()
            if am._maps_remaining() > 0 and am._reduce_mem_outstanding > limit:
                violations.append(sc.sim.now)
        assert not violations

    def test_reducers_fill_cluster_after_maps(self):
        sc = small_cluster()
        spec = spec_with(sc, 16, 40)
        result = sc.run_job(spec)
        maps_end = max(s.end_time for s in result.stats_of(TaskType.MAP))
        late_reduces = [
            s for s in result.stats_of(TaskType.REDUCE) if s.start_time > maps_end
        ]
        assert late_reduces  # the post-map phase exists and is used


class TestHotSwapMidTask:
    def test_spill_percent_update_lands_in_running_map(self):
        """Category-3 semantics: a spill.percent update delivered while
        a map is in its map phase takes effect at its spill decision."""
        from repro.core.configurator import DynamicConfigurator

        sc = small_cluster()
        # One long map (compute-bound) so there is time to hot swap.
        path = "/hot-in"
        DatasetSpec("hot", num_blocks=1).load(sc.hdfs, path)
        profile = WorkloadProfile(
            name="hot", map_output_ratio=1.0, map_output_record_size=100.0,
            map_cpu_fixed_sec=60.0, map_output_noise=0.0, partition_skew=0.0,
        )
        spec = JobSpec(name="hot", workload=profile, input_path=path, num_reducers=1)
        configurator = DynamicConfigurator()
        configurator.register_job(spec)
        # Default 0.8 would spill twice (134 MB output vs 160*0.8=128);
        # the mid-run bump to 0.99 avoids the second spill (158 > 134).
        configurator.set_job_parameters(spec.job_id, {P.IO_SORT_MB: 160})

        def bump():
            configurator.set_task_parameters(spec.job_id, {P.SORT_SPILL_PERCENT: 0.99})

        sc.sim.call_at(30.0, bump)
        result = sc.run_job(spec, config_provider=configurator)
        (mstat,) = result.stats_of(TaskType.MAP)
        assert mstat.spilled_records == mstat.map_output_records  # single spill
