"""Tests for configurations and dependency clamps."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parameters as P
from repro.core.configuration import (
    HEAP_FRACTION,
    Configuration,
    enforce_dependencies,
    is_feasible,
)
from repro.core.parameters import PARAMETER_SPACE


class TestConfiguration:
    def test_defaults_filled(self):
        cfg = Configuration()
        assert cfg[P.IO_SORT_MB] == 100
        assert cfg[P.SHUFFLE_PARALLELCOPIES] == 5

    def test_overrides_applied(self):
        cfg = Configuration({P.IO_SORT_MB: 400})
        assert cfg[P.IO_SORT_MB] == 400

    def test_setting_clamps_to_spec_range(self):
        cfg = Configuration()
        cfg[P.IO_SORT_MB] = 10**9
        assert cfg[P.IO_SORT_MB] == PARAMETER_SPACE.spec(P.IO_SORT_MB).high

    def test_unknown_keys_pass_through(self):
        cfg = Configuration()
        cfg["custom.app.param"] = 7
        assert cfg["custom.app.param"] == 7

    def test_copy_is_independent(self):
        a = Configuration()
        b = a.copy()
        b[P.IO_SORT_MB] = 500
        assert a[P.IO_SORT_MB] == 100

    def test_updated_returns_new_object(self):
        a = Configuration()
        b = a.updated({P.IO_SORT_MB: 300})
        assert a[P.IO_SORT_MB] == 100
        assert b[P.IO_SORT_MB] == 300

    def test_equality_by_values(self):
        assert Configuration() == Configuration()
        assert Configuration({P.IO_SORT_MB: 200}) != Configuration()

    def test_byte_accessors(self):
        cfg = Configuration({P.MAP_MEMORY_MB: 2048})
        assert cfg.map_memory_bytes == 2048 * 1024 * 1024
        assert cfg.map_heap_bytes == int(2048 * 1024 * 1024 * HEAP_FRACTION)
        assert cfg.sort_buffer_bytes == 100 * 1024 * 1024

    def test_as_dict_roundtrip(self):
        cfg = Configuration({P.IO_SORT_MB: 250})
        again = Configuration(cfg.as_dict())
        assert again == cfg


class TestDependencies:
    def test_sort_buffer_clamped_to_heap(self):
        cfg = Configuration({P.MAP_MEMORY_MB: 512, P.IO_SORT_MB: 1600})
        fixed = enforce_dependencies(cfg)
        max_sort = 512 * HEAP_FRACTION * 0.75
        assert fixed[P.IO_SORT_MB] <= max_sort

    def test_merge_percent_clamped_to_input_buffer(self):
        cfg = Configuration(
            {P.SHUFFLE_INPUT_BUFFER_PERCENT: 0.4, P.SHUFFLE_MERGE_PERCENT: 0.9}
        )
        fixed = enforce_dependencies(cfg)
        assert fixed[P.SHUFFLE_MERGE_PERCENT] <= fixed[P.SHUFFLE_INPUT_BUFFER_PERCENT]

    def test_memory_limit_clamped_to_merge_percent(self):
        cfg = Configuration(
            {P.SHUFFLE_MERGE_PERCENT: 0.3, P.SHUFFLE_MEMORY_LIMIT_PERCENT: 0.7}
        )
        fixed = enforce_dependencies(cfg)
        assert fixed[P.SHUFFLE_MEMORY_LIMIT_PERCENT] <= fixed[P.SHUFFLE_MERGE_PERCENT]

    def test_feasible_config_unchanged(self):
        cfg = Configuration()
        assert is_feasible(cfg)
        assert enforce_dependencies(cfg) == cfg

    def test_enforce_does_not_mutate_input(self):
        cfg = Configuration({P.MAP_MEMORY_MB: 512, P.IO_SORT_MB: 1600})
        enforce_dependencies(cfg)
        assert cfg[P.IO_SORT_MB] == 1600

    @given(
        map_mb=st.integers(512, 4096),
        sort_mb=st.integers(50, 1600),
        ibp=st.floats(0.2, 0.9),
        merge=st.floats(0.2, 0.9),
        limit=st.floats(0.1, 0.7),
    )
    @settings(max_examples=100, deadline=None)
    def test_enforce_is_idempotent_and_feasible(self, map_mb, sort_mb, ibp, merge, limit):
        cfg = Configuration(
            {
                P.MAP_MEMORY_MB: map_mb,
                P.IO_SORT_MB: sort_mb,
                P.SHUFFLE_INPUT_BUFFER_PERCENT: ibp,
                P.SHUFFLE_MERGE_PERCENT: merge,
                P.SHUFFLE_MEMORY_LIMIT_PERCENT: limit,
            }
        )
        once = enforce_dependencies(cfg)
        assert is_feasible(once)
        assert enforce_dependencies(once) == once
