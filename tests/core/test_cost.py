"""Tests for the Equation-1 cost function."""

import pytest

from repro.core.cost import FAILURE_COST, CostModel, task_cost
from repro.mapreduce.jobspec import TaskId, TaskType
from repro.monitor.statistics import TaskStats


def make_stats(
    task_type=TaskType.MAP,
    duration=10.0,
    cpu_seconds=5.0,
    allocated_cores=1.0,
    working_set=512 * 1024**2,
    container=1024 * 1024**2,
    spilled=100,
    map_out=100,
    combine_out=0,
    reduce_in=0,
    failed=False,
    index=0,
):
    return TaskStats(
        task_id=TaskId("job_t", task_type, index),
        task_type=task_type,
        node_id=0,
        attempt=1,
        config={},
        start_time=0.0,
        end_time=duration,
        cpu_seconds=cpu_seconds,
        allocated_cores=allocated_cores,
        working_set_bytes=working_set,
        container_memory_bytes=container,
        spilled_records=spilled,
        map_output_records=map_out,
        combine_output_records=combine_out,
        reduce_input_records=reduce_in,
        failed=failed,
    )


class TestTaskCost:
    def test_equation1_composition(self):
        s = make_stats(duration=10, cpu_seconds=5, working_set=512 * 1024**2)
        # umem=0.5, ucpu=0.5, spill ratio=1, T/Tmax=0.5
        assert task_cost(s, t_max=20.0) == pytest.approx(0.5 + 0.5 + 1.0 + 0.5)

    def test_perfect_task_costs_near_zero_plus_spill(self):
        s = make_stats(
            duration=10,
            cpu_seconds=10,
            working_set=1024 * 1024**2,
            spilled=100,
            map_out=100,
        )
        # umem=1, ucpu=1, spill=1 (unavoidable single write), T/Tmax=1
        assert task_cost(s, t_max=10.0) == pytest.approx(2.0)

    def test_failure_penalty_dominates(self):
        s = make_stats(failed=True)
        assert task_cost(s, t_max=10.0) == FAILURE_COST
        assert FAILURE_COST > 4.0  # worse than any feasible cost

    def test_lower_spills_lower_cost(self):
        a = make_stats(spilled=300, map_out=100)
        b = make_stats(spilled=100, map_out=100)
        assert task_cost(b, 10.0) < task_cost(a, 10.0)

    def test_spill_ratio_capped(self):
        s = make_stats(spilled=10**9, map_out=1)
        assert task_cost(s, 10.0) < FAILURE_COST

    def test_zero_tmax_guard(self):
        s = make_stats(duration=5)
        assert task_cost(s, 0.0) >= 1.0

    def test_reduce_spill_ratio_uses_input_records(self):
        s = make_stats(
            task_type=TaskType.REDUCE, spilled=0, reduce_in=1000, map_out=0
        )
        assert s.spill_ratio == 0.0

    def test_combiner_output_preferred_for_ratio(self):
        s = make_stats(spilled=50, map_out=100, combine_out=50)
        assert s.spill_ratio == pytest.approx(1.0)


class TestCostModel:
    def test_tmax_tracks_maximum(self):
        model = CostModel()
        model.observe(make_stats(duration=5.0, index=1))
        model.observe(make_stats(duration=12.0, index=2))
        model.observe(make_stats(duration=8.0, index=3))
        assert model.t_max(TaskType.MAP) == 12.0

    def test_failed_tasks_do_not_move_tmax(self):
        model = CostModel()
        model.observe(make_stats(duration=5.0))
        model.observe(make_stats(duration=50.0, failed=True))
        assert model.t_max(TaskType.MAP) == 5.0

    def test_tmax_per_task_type(self):
        model = CostModel()
        model.observe(make_stats(duration=5.0))
        model.observe(make_stats(task_type=TaskType.REDUCE, duration=30.0, reduce_in=10))
        assert model.t_max(TaskType.MAP) == 5.0
        assert model.t_max(TaskType.REDUCE) == 30.0

    def test_sample_costs_average(self):
        model = CostModel()
        model.observe(make_stats(duration=10.0, index=1), sample_key="a")
        model.observe(make_stats(duration=10.0, cpu_seconds=10.0, index=2), sample_key="a")
        assert model.evaluations("a") == 2
        assert model.sample_cost("a") is not None

    def test_unknown_sample_is_none(self):
        assert CostModel().sample_cost("missing") is None

    def test_best_sample(self):
        model = CostModel()
        model.observe(make_stats(duration=10.0, cpu_seconds=1.0, index=1), sample_key="bad")
        model.observe(make_stats(duration=10.0, cpu_seconds=10.0, index=2), sample_key="good")
        key, cost = model.best_sample(["bad", "good"])
        assert key == "good"

    def test_best_sample_empty(self):
        assert CostModel().best_sample(["a"]) is None
