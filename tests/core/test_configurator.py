"""Tests for the dynamic configurator (Table-1 API)."""

import pytest

from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.core.configurator import DynamicConfigurator
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile


def make_spec(name="job"):
    return JobSpec(
        name=name,
        workload=WorkloadProfile(name="wl", map_output_ratio=1.0, map_output_record_size=100),
        input_path="/data/x",
        num_reducers=2,
    )


@pytest.fixture
def setup():
    cfgr = DynamicConfigurator()
    spec = make_spec()
    cfgr.register_job(spec)
    return cfgr, spec


class TestTable1Api:
    def test_job_parameters_listed(self, setup):
        cfgr, spec = setup
        params = cfgr.get_configurable_job_parameters(spec.job_id)
        assert P.IO_SORT_MB in params
        assert len(params) == 13

    def test_camel_case_aliases_exist(self, setup):
        cfgr, spec = setup
        assert cfgr.getConfigurableJobParameters(spec.job_id)
        assert cfgr.setJobParameters(spec.job_id, {P.IO_SORT_MB: 300}) == 1

    def test_unknown_job_rejected(self):
        cfgr = DynamicConfigurator()
        with pytest.raises(KeyError):
            cfgr.get_configurable_job_parameters("nope")

    def test_set_job_parameters_affects_future_tasks(self, setup):
        cfgr, spec = setup
        cfgr.set_job_parameters(spec.job_id, {P.IO_SORT_MB: 400})
        cfg = cfgr.task_config(spec, spec.map_task_id(0))
        assert cfg[P.IO_SORT_MB] == 400

    def test_set_task_parameters_single_task(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(3)
        cfgr.set_task_parameters(spec.job_id, {P.IO_SORT_MB: 500}, task_id=tid)
        assert cfgr.task_config(spec, tid)[P.IO_SORT_MB] == 500
        # Other tasks keep the job-level value.
        assert cfgr.task_config(spec, spec.map_task_id(4))[P.IO_SORT_MB] == 100

    def test_running_task_exposes_only_hot_swappable(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(0)
        cfgr.task_config(spec, tid)  # now "running"
        params = cfgr.get_configurable_task_parameters(spec.job_id, tid)
        assert P.SORT_SPILL_PERCENT in params
        assert P.MAP_MEMORY_MB not in params

    def test_hot_swap_mutates_live_config(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(0)
        live = cfgr.task_config(spec, tid)
        cfgr.set_task_parameters(spec.job_id, {P.SORT_SPILL_PERCENT: 0.99}, task_id=tid)
        assert live[P.SORT_SPILL_PERCENT] == 0.99

    def test_cold_params_do_not_hot_swap(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(0)
        live = cfgr.task_config(spec, tid)
        cfgr.set_task_parameters(spec.job_id, {P.MAP_MEMORY_MB: 2048}, task_id=tid)
        assert live[P.MAP_MEMORY_MB] != 2048  # running task keeps its grant

    def test_all_tasks_variant_hot_swaps_every_live_task(self, setup):
        cfgr, spec = setup
        live0 = cfgr.task_config(spec, spec.map_task_id(0))
        live1 = cfgr.task_config(spec, spec.map_task_id(1))
        cfgr.set_task_parameters(spec.job_id, {P.SORT_SPILL_PERCENT: 0.95})
        assert live0[P.SORT_SPILL_PERCENT] == 0.95
        assert live1[P.SORT_SPILL_PERCENT] == 0.95


class TestWaveQueues:
    def test_queue_pop_order(self, setup):
        cfgr, spec = setup
        a = Configuration({P.IO_SORT_MB: 200})
        b = Configuration({P.IO_SORT_MB: 300})
        cfgr.push_wave_configs(spec.job_id, TaskType.MAP, [(a, 1), (b, 2)])
        assert cfgr.task_config(spec, spec.map_task_id(0))[P.IO_SORT_MB] == 200
        assert cfgr.task_config(spec, spec.map_task_id(1))[P.IO_SORT_MB] == 300

    def test_queue_exhaustion_falls_back_to_job_config(self, setup):
        cfgr, spec = setup
        cfgr.push_wave_configs(
            spec.job_id, TaskType.MAP, [(Configuration({P.IO_SORT_MB: 200}), 1)]
        )
        cfgr.task_config(spec, spec.map_task_id(0))
        cfg = cfgr.task_config(spec, spec.map_task_id(1))
        assert cfg[P.IO_SORT_MB] == 100

    def test_queues_are_per_task_type(self, setup):
        cfgr, spec = setup
        cfgr.push_wave_configs(
            spec.job_id, TaskType.REDUCE, [(Configuration({P.IO_SORT_MB: 300}), 1)]
        )
        # A map task must not consume the reduce queue.
        assert cfgr.task_config(spec, spec.map_task_id(0))[P.IO_SORT_MB] == 100
        assert cfgr.task_config(spec, spec.reduce_task_id(0))[P.IO_SORT_MB] == 300

    def test_assignment_listener_receives_meta(self, setup):
        cfgr, spec = setup
        seen = []
        cfgr.assignment_listeners.append(
            lambda jid, tid, cfg, meta: seen.append((str(tid), meta))
        )
        cfgr.push_wave_configs(
            spec.job_id, TaskType.MAP, [(Configuration(), "sample-9")]
        )
        cfgr.task_config(spec, spec.map_task_id(0))
        assert seen[0][1] == "sample-9"

    def test_queued_configs_are_clamped_feasible(self, setup):
        cfgr, spec = setup
        infeasible = Configuration({P.MAP_MEMORY_MB: 512, P.IO_SORT_MB: 1600})
        cfgr.push_wave_configs(spec.job_id, TaskType.MAP, [(infeasible, 1)])
        cfg = cfgr.task_config(spec, spec.map_task_id(0))
        assert cfg[P.IO_SORT_MB] <= 512 * 0.8 * 0.75


class TestLaunchRefresh:
    def test_job_config_path_refreshes_at_launch(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(0)
        requested = cfgr.task_config(spec, tid)
        cfgr.set_job_parameters(spec.job_id, {P.IO_SORT_MB: 333})
        launched = cfgr.task_launch_config(spec, tid, requested)
        assert launched[P.IO_SORT_MB] == 333

    def test_grant_parameters_pinned_at_request_values(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(0)
        requested = cfgr.task_config(spec, tid)
        cfgr.set_job_parameters(spec.job_id, {P.MAP_MEMORY_MB: 4096})
        launched = cfgr.task_launch_config(spec, tid, requested)
        assert launched[P.MAP_MEMORY_MB] == requested[P.MAP_MEMORY_MB]

    def test_sampled_config_not_refreshed(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(0)
        cfgr.push_wave_configs(
            spec.job_id, TaskType.MAP, [(Configuration({P.IO_SORT_MB: 250}), 1)]
        )
        requested = cfgr.task_config(spec, tid)
        cfgr.set_job_parameters(spec.job_id, {P.IO_SORT_MB: 999})
        launched = cfgr.task_launch_config(spec, tid, requested)
        assert launched is requested

    def test_task_finished_cleans_state(self, setup):
        cfgr, spec = setup
        tid = spec.map_task_id(0)
        cfgr.task_config(spec, tid)
        cfgr.task_finished(tid)
        # No longer "running": all parameters configurable again.
        assert P.MAP_MEMORY_MB in cfgr.get_configurable_task_parameters(spec.job_id, tid)


class TestJobLifecycle:
    def test_complete_job_drops_state(self, setup):
        cfgr, spec = setup
        cfgr.task_config(spec, spec.map_task_id(0))
        cfgr.complete_job(spec.job_id)
        with pytest.raises(KeyError):
            cfgr.set_job_parameters(spec.job_id, {P.IO_SORT_MB: 1})

    def test_two_jobs_independent(self):
        cfgr = DynamicConfigurator()
        spec1, spec2 = make_spec("a"), make_spec("b")
        cfgr.register_job(spec1)
        cfgr.register_job(spec2)
        cfgr.set_job_parameters(spec1.job_id, {P.IO_SORT_MB: 640})
        assert cfgr.task_config(spec2, spec2.map_task_id(0))[P.IO_SORT_MB] == 100
