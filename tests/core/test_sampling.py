"""Tests for (weighted) Latin hypercube sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import latin_hypercube, weighted_latin_hypercube


class TestLatinHypercube:
    def test_shape(self):
        pts = latin_hypercube(np.random.default_rng(0), 24, 5)
        assert pts.shape == (24, 5)

    def test_within_unit_cube(self):
        pts = latin_hypercube(np.random.default_rng(0), 100, 4)
        assert (pts >= 0).all() and (pts <= 1).all()

    @given(seed=st.integers(0, 500), n=st.integers(2, 40), dims=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_stratification_property(self, seed, n, dims):
        """Exactly one sample per 1/n slab of every dimension -- the
        defining LHS property the paper relies on for sampling quality."""
        pts = latin_hypercube(np.random.default_rng(seed), n, dims)
        for d in range(dims):
            strata = np.floor(pts[:, d] * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert sorted(strata) == list(range(n))

    def test_bounds_respected(self):
        bounds = [(0.2, 0.4), (0.5, 0.9), (0.0, 1.0)]
        pts = latin_hypercube(np.random.default_rng(1), 30, 3, bounds=bounds)
        for d, (lo, hi) in enumerate(bounds):
            assert (pts[:, d] >= lo - 1e-12).all()
            assert (pts[:, d] <= hi + 1e-12).all()

    def test_degenerate_bounds_collapse(self):
        pts = latin_hypercube(np.random.default_rng(1), 10, 1, bounds=[(0.5, 0.5)])
        assert np.allclose(pts, 0.5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            latin_hypercube(np.random.default_rng(0), 5, 1, bounds=[(0.9, 0.1)])

    def test_wrong_bounds_count_rejected(self):
        with pytest.raises(ValueError):
            latin_hypercube(np.random.default_rng(0), 5, 2, bounds=[(0, 1)])

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            latin_hypercube(np.random.default_rng(0), 0, 2)

    def test_deterministic_under_seed(self):
        a = latin_hypercube(np.random.default_rng(7), 16, 3)
        b = latin_hypercube(np.random.default_rng(7), 16, 3)
        assert (a == b).all()


class TestWeightedLatinHypercube:
    def test_within_bounds(self):
        center = np.array([0.5, 0.2])
        bounds = [(0.3, 0.7), (0.0, 0.4)]
        pts = weighted_latin_hypercube(np.random.default_rng(0), 50, center, bounds)
        for d, (lo, hi) in enumerate(bounds):
            assert (pts[:, d] >= lo - 1e-9).all()
            assert (pts[:, d] <= hi + 1e-9).all()

    def test_density_concentrates_at_center(self):
        """More mass lands nearer the center than a uniform draw would put."""
        rng = np.random.default_rng(3)
        center = np.array([0.5])
        pts = weighted_latin_hypercube(rng, 400, center, [(0.0, 1.0)])
        near = np.abs(pts[:, 0] - 0.5) < 0.25
        # Uniform would give ~50%; the triangular kernel gives 75%.
        assert near.mean() > 0.6

    def test_center_at_edge_works(self):
        pts = weighted_latin_hypercube(
            np.random.default_rng(1), 30, np.array([0.0]), [(0.0, 1.0)]
        )
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_center_outside_bounds_clipped(self):
        pts = weighted_latin_hypercube(
            np.random.default_rng(1), 30, np.array([0.9]), [(0.0, 0.2)]
        )
        assert (pts <= 0.2 + 1e-9).all()

    def test_collapsed_bounds(self):
        pts = weighted_latin_hypercube(
            np.random.default_rng(1), 10, np.array([0.5]), [(0.5, 0.5)]
        )
        assert np.allclose(pts, 0.5)

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            weighted_latin_hypercube(
                np.random.default_rng(0), 5, np.array([0.5, 0.5]), [(0, 1)]
            )
