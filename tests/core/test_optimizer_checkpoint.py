"""Checkpoint/restore of the shared wave-optimizer state.

The recovery journal snapshots every finished session's optimizers via
``WaveOptimizer.checkpoint``; these tests pin the contract: the
snapshot is JSON-round-trip safe, carries the incumbent (point *and*
cost), the rule-tightened bounds, and the infeasible regions, and a
freshly constructed optimizer restored from it answers the questions
the tuner asks (``best_config``, ``is_infeasible``, ``rollback``) the
way the original would.
"""

import json

import numpy as np
import pytest

from repro.core import parameters as P
from repro.core.cost import FAILURE_COST
from repro.core.hill_climbing import GrayBoxHillClimber, HillClimbSettings
from repro.core.optimizers import make_optimizer
from repro.core.parameters import PARAMETER_SPACE

SETTINGS = HillClimbSettings(m=6, n=4, global_search_limit=2)


def subspace():
    return PARAMETER_SPACE.subspace([P.IO_SORT_MB, P.SORT_SPILL_PERCENT])


def make(seed=7):
    return make_optimizer(
        "hill_climb", subspace(), np.random.default_rng(seed), SETTINGS
    )


def bowl(point):
    return float(np.sum((point - 0.4) ** 2))


def drive_waves(opt, waves, objective=bowl, mark_infeasible_first=False):
    """Observe *waves* full waves (no batch left in flight)."""
    for _ in range(waves):
        samples = opt.propose()
        if not samples:
            return
        if mark_infeasible_first:
            opt.mark_infeasible(samples[0].sample_id)
            mark_infeasible_first = False
        for s in opt.pending_samples():
            cost = objective(s.point)
            opt.observe(
                s.sample_id,
                FAILURE_COST if opt.is_infeasible(s.point) else cost,
            )


class TestCheckpointRoundTrip:
    def test_snapshot_is_json_safe(self):
        opt = make()
        drive_waves(opt, 3, mark_infeasible_first=True)
        ckpt = opt.checkpoint()
        assert ckpt == json.loads(json.dumps(ckpt))

    def test_restore_reinstates_counters_and_incumbent(self):
        opt = make()
        drive_waves(opt, 3)
        ckpt = opt.checkpoint()
        restored = make(seed=99)
        restored.restore(ckpt)
        assert restored.samples_proposed == opt.samples_proposed
        assert restored.observations == opt.observations
        assert restored.waves_started == opt.waves_started
        assert restored.wave_of_best == opt.wave_of_best
        assert restored.cost_trajectory == opt.cost_trajectory
        assert restored.best_cost() == pytest.approx(opt.best_cost())
        np.testing.assert_allclose(restored.best_point(), opt.best_point())
        base = restored.best_config()
        assert base.as_dict() == opt.best_config().as_dict()

    def test_checkpoint_of_restore_round_trips(self):
        opt = make()
        drive_waves(opt, 3, mark_infeasible_first=True)
        ckpt = json.loads(json.dumps(opt.checkpoint()))
        restored = make(seed=99)
        restored.restore(ckpt)
        assert restored.checkpoint() == ckpt

    def test_bounds_and_infeasible_regions_survive(self):
        opt = make()
        drive_waves(opt, 2, mark_infeasible_first=True)
        opt.bounds.raise_lower(0, 0.2)
        bad_point = opt._infeasible_points[0]
        restored = make(seed=99)
        restored.restore(opt.checkpoint())
        assert restored.bounds.lo[0] == pytest.approx(0.2)
        assert restored.is_infeasible(bad_point)
        assert restored.infeasible_regions == opt.infeasible_regions
        assert restored.infeasible_marks == opt.infeasible_marks

    def test_restored_incumbent_supports_rollback(self):
        # The restored optimizer can void a distrusted wave and fall
        # back to the journaled incumbent -- the degraded-mode path.
        opt = make()
        drive_waves(opt, 2)
        restored = make(seed=99)
        restored.restore(opt.checkpoint())
        assert restored.propose()
        assert restored.rollback()
        assert restored.best_cost() == pytest.approx(opt.best_cost())

    def test_restored_search_continues(self):
        opt = make()
        drive_waves(opt, 2)
        restored = make(seed=99)
        restored.restore(opt.checkpoint())
        before = restored.waves_started
        drive_waves(restored, 1)
        assert restored.waves_started == before + 1


class TestCheckpointEdges:
    def test_restore_over_in_flight_batch_raises(self):
        opt = make()
        drive_waves(opt, 1)
        donor = make(seed=11)
        drive_waves(donor, 1)
        opt.propose()  # wave now in flight
        with pytest.raises(RuntimeError, match="in-flight batch"):
            opt.restore(donor.checkpoint())

    def test_fresh_optimizer_checkpoint_is_empty(self):
        ckpt = make().checkpoint()
        assert ckpt["samples_proposed"] == 0
        assert ckpt["incumbent_point"] is None
        assert ckpt["incumbent_cost"] is None
        assert not ckpt["done"]
        restored = make(seed=99)
        restored.restore(ckpt)
        assert restored.best_point() is None
        assert not restored.rollback()

    def test_in_flight_batch_is_excluded_from_checkpoint(self):
        opt = make()
        drive_waves(opt, 2)
        quiescent = opt.checkpoint()
        opt.propose()  # open a wave, observe nothing
        assert opt.checkpoint()["observations"] == quiescent["observations"]

    def test_done_flag_round_trips(self):
        opt = make()
        # Drive to termination.
        for _ in range(400):
            samples = opt.propose()
            if not samples:
                break
            for s in opt.pending_samples():
                opt.observe(s.sample_id, bowl(s.point))
        assert opt.finished
        restored = make(seed=99)
        restored.restore(opt.checkpoint())
        assert restored.finished
        assert restored.propose() == []
