"""Tests for the Table-2 parameter space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parameters as P
from repro.core.parameters import (
    DEFAULTS,
    PARAMETER_SPACE,
    ParameterSpace,
    ParamSpec,
    build_parameter_space,
)


class TestTable2Defaults:
    """Every default must match Table 2 verbatim."""

    @pytest.mark.parametrize(
        "name,expected",
        [
            (P.MAP_MEMORY_MB, 1024),
            (P.REDUCE_MEMORY_MB, 1024),
            (P.IO_SORT_MB, 100),
            (P.SORT_SPILL_PERCENT, 0.8),
            (P.SHUFFLE_INPUT_BUFFER_PERCENT, 0.7),
            (P.SHUFFLE_MERGE_PERCENT, 0.66),
            (P.SHUFFLE_MEMORY_LIMIT_PERCENT, 0.25),
            (P.MERGE_INMEM_THRESHOLD, 1000),
            (P.REDUCE_INPUT_BUFFER_PERCENT, 0.0),
            (P.MAP_CPU_VCORES, 1),
            (P.REDUCE_CPU_VCORES, 1),
            (P.IO_SORT_FACTOR, 10),
            (P.SHUFFLE_PARALLELCOPIES, 5),
        ],
    )
    def test_default(self, name, expected):
        assert DEFAULTS[name] == expected

    def test_thirteen_parameters(self):
        assert len(PARAMETER_SPACE) == 13


class TestParamSpec:
    def test_decode_endpoints(self):
        spec = ParamSpec("x", 5, 0, 10)
        assert spec.decode(0.0) == 0
        assert spec.decode(1.0) == 10

    def test_decode_clips_out_of_range(self):
        spec = ParamSpec("x", 5, 0, 10)
        assert spec.decode(-0.5) == 0
        assert spec.decode(1.5) == 10

    def test_int_kind_rounds(self):
        spec = ParamSpec("x", 5, 1, 10, kind="int")
        assert isinstance(spec.decode(0.5), int)

    def test_log_scale_midpoint_is_geometric_mean(self):
        spec = ParamSpec("x", 100, 10, 1000, log_scale=True)
        assert spec.decode(0.5) == pytest.approx(100, rel=0.01)

    def test_log_scale_requires_positive_low(self):
        with pytest.raises(ValueError):
            ParamSpec("x", 1, 0, 10, log_scale=True)

    def test_default_outside_range_rejected(self):
        with pytest.raises(ValueError):
            ParamSpec("x", 20, 0, 10)

    def test_step_rounding(self):
        spec = ParamSpec("x", 64, 64, 1024, step=64)
        assert spec.decode(0.37) % 64 == 0

    def test_clamp(self):
        spec = ParamSpec("x", 5, 1, 10, kind="int")
        assert spec.clamp(0) == 1
        assert spec.clamp(99) == 10
        assert spec.clamp(5.4) == 5

    @given(u=st.floats(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_within_one_step(self, u):
        spec = ParamSpec("x", 100, 50, 1600, kind="int", log_scale=True, step=10)
        value = spec.decode(u)
        again = spec.decode(spec.encode(value))
        assert abs(again - value) <= 10  # one step of quantization

    @given(u=st.floats(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_float_roundtrip_exact(self, u):
        spec = ParamSpec("x", 0.5, 0.2, 0.9)
        value = spec.decode(u)
        assert spec.decode(spec.encode(value)) == pytest.approx(value)


class TestParameterSpace:
    def test_duplicate_names_rejected(self):
        s = ParamSpec("x", 5, 0, 10)
        with pytest.raises(ValueError):
            ParameterSpace([s, s])

    def test_decode_requires_matching_dims(self):
        with pytest.raises(ValueError):
            PARAMETER_SPACE.decode(np.zeros(3))

    def test_default_point_decodes_to_defaults(self):
        decoded = PARAMETER_SPACE.decode(PARAMETER_SPACE.default_point())
        for name, value in DEFAULTS.items():
            spec = PARAMETER_SPACE.spec(name)
            tolerance = max(spec.step, 1e-6) if spec.step else 1e-6
            if spec.kind == "int":
                tolerance = max(tolerance, 1)
            assert abs(decoded[name] - value) <= tolerance, name

    def test_subspace_preserves_order(self):
        sub = PARAMETER_SPACE.subspace([P.IO_SORT_MB, P.MAP_MEMORY_MB])
        assert sub.names == [P.IO_SORT_MB, P.MAP_MEMORY_MB]

    def test_encode_partial_uses_defaults(self):
        point = PARAMETER_SPACE.encode({P.IO_SORT_MB: 800})
        decoded = PARAMETER_SPACE.decode(point)
        assert decoded[P.MAP_CPU_VCORES] == DEFAULTS[P.MAP_CPU_VCORES]

    def test_contains(self):
        assert P.IO_SORT_MB in PARAMETER_SPACE
        assert "nonsense" not in PARAMETER_SPACE

    def test_custom_bounds(self):
        space = build_parameter_space(max_container_mb=2048, max_vcores=4)
        assert space.spec(P.MAP_MEMORY_MB).high == 2048
        assert space.spec(P.MAP_CPU_VCORES).high == 4

    def test_hot_swappable_parameters_are_category3(self):
        hot = {s.name for s in PARAMETER_SPACE if s.hot_swappable}
        # Section 2.2 names these as changeable on the fly.
        assert P.SORT_SPILL_PERCENT in hot
        assert P.MERGE_INMEM_THRESHOLD in hot
        # Container sizes definitely are not.
        assert P.MAP_MEMORY_MB not in hot
