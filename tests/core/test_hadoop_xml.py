"""Tests for Hadoop XML configuration interchange."""

import pytest

from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.core.hadoop_xml import (
    from_hadoop_xml,
    load_hadoop_xml,
    save_hadoop_xml,
    to_hadoop_xml,
)


class TestExport:
    def test_contains_every_parameter(self):
        xml = to_hadoop_xml(Configuration())
        for name in (P.IO_SORT_MB, P.SHUFFLE_PARALLELCOPIES, P.MAP_MEMORY_MB):
            assert f"<name>{name}</name>" in xml

    def test_int_parameters_render_without_decimals(self):
        xml = to_hadoop_xml(Configuration({P.IO_SORT_MB: 250}))
        assert "<value>250</value>" in xml
        assert "250.0" not in xml

    def test_float_parameters_render_compactly(self):
        xml = to_hadoop_xml(Configuration({P.SORT_SPILL_PERCENT: 0.99}))
        assert "<value>0.99</value>" in xml

    def test_declaration_and_root(self):
        xml = to_hadoop_xml(Configuration())
        assert xml.startswith("<?xml")
        assert "<configuration>" in xml


class TestImport:
    def test_roundtrip_preserves_values(self):
        original = Configuration(
            {P.IO_SORT_MB: 320, P.SHUFFLE_PARALLELCOPIES: 20, P.SORT_SPILL_PERCENT: 0.95}
        )
        restored = from_hadoop_xml(to_hadoop_xml(original))
        for name in original:
            assert float(restored[name]) == pytest.approx(float(original[name]))

    def test_unknown_properties_carried(self):
        xml = """<?xml version='1.0'?>
        <configuration>
          <property><name>dfs.replication</name><value>3</value></property>
          <property><name>mapreduce.job.name</name><value>my job</value></property>
        </configuration>"""
        cfg = from_hadoop_xml(xml)
        assert cfg["dfs.replication"] == 3.0
        assert cfg["mapreduce.job.name"] == "my job"

    def test_known_parameters_clamped(self):
        xml = """<configuration>
          <property><name>mapreduce.task.io.sort.mb</name><value>999999</value></property>
        </configuration>"""
        cfg = from_hadoop_xml(xml)
        assert cfg[P.IO_SORT_MB] == 1600  # spec upper bound

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError):
            from_hadoop_xml("<settings></settings>")

    def test_malformed_property_rejected(self):
        with pytest.raises(ValueError):
            from_hadoop_xml("<configuration><property><name>x</name></property></configuration>")

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "mapred-site.xml")
        save_hadoop_xml(Configuration({P.IO_SORT_MB: 210}), path)
        assert load_hadoop_xml(path)[P.IO_SORT_MB] == 210
