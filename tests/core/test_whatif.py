"""Tests for the category-1 what-if advisor."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.whatif import (
    CategoryOneAdvisor,
    CategoryOneCandidate,
    default_candidates,
)
from repro.workloads.datasets import DatasetSpec
from repro.workloads.terasort import terasort_profile

SMALL_CLUSTER = ClusterSpec(num_slaves=4, racks=(2, 2))


class TestCandidate:
    def test_validation(self):
        with pytest.raises(ValueError):
            CategoryOneCandidate(0)
        with pytest.raises(ValueError):
            CategoryOneCandidate(4, slowstart=2.0)

    def test_default_grid_shape(self):
        grid = default_candidates(64)
        reducers = {c.num_reducers for c in grid}
        assert reducers == {8, 16, 32, 64}
        slowstarts = {c.slowstart for c in grid}
        assert slowstarts == {0.05, 0.8}

    def test_default_grid_small_jobs(self):
        grid = default_candidates(2)
        assert all(c.num_reducers >= 1 for c in grid)


class TestAdvisor:
    def test_evaluate_runs_a_job(self):
        advisor = CategoryOneAdvisor(seed=1, cluster_spec=SMALL_CLUSTER)
        outcome = advisor.evaluate(
            terasort_profile(),
            DatasetSpec("whatif-a", num_blocks=16),
            CategoryOneCandidate(4),
        )
        assert outcome.succeeded
        assert outcome.predicted_duration > 0

    def test_advise_picks_minimum(self):
        advisor = CategoryOneAdvisor(seed=1, cluster_spec=SMALL_CLUSTER)
        advice = advisor.advise(
            terasort_profile(),
            DatasetSpec("whatif-b", num_blocks=16),
            candidates=[
                CategoryOneCandidate(1),   # one reducer strangles the job
                CategoryOneCandidate(4),
                CategoryOneCandidate(8),
            ],
        )
        durations = {
            e.candidate.num_reducers: e.predicted_duration for e in advice.evaluations
        }
        assert advice.predicted_duration == min(durations.values())
        # A single reducer must be clearly worse than the best.
        assert durations[1] > advice.predicted_duration

    def test_speedup_over(self):
        advisor = CategoryOneAdvisor(seed=1, cluster_spec=SMALL_CLUSTER)
        one = CategoryOneCandidate(1)
        advice = advisor.advise(
            terasort_profile(),
            DatasetSpec("whatif-c", num_blocks=16),
            candidates=[one, CategoryOneCandidate(6)],
        )
        assert advice.speedup_over(one) >= 0.0
        with pytest.raises(KeyError):
            advice.speedup_over(CategoryOneCandidate(99))

    def test_empty_candidates_rejected(self):
        advisor = CategoryOneAdvisor(seed=1, cluster_spec=SMALL_CLUSTER)
        with pytest.raises(ValueError):
            advisor.advise(
                terasort_profile(), DatasetSpec("whatif-d", num_blocks=4), candidates=[]
            )

    def test_deterministic(self):
        a1 = CategoryOneAdvisor(seed=3, cluster_spec=SMALL_CLUSTER).advise(
            terasort_profile(),
            DatasetSpec("whatif-e", num_blocks=8),
            candidates=[CategoryOneCandidate(2), CategoryOneCandidate(4)],
        )
        a2 = CategoryOneAdvisor(seed=3, cluster_spec=SMALL_CLUSTER).advise(
            terasort_profile(),
            DatasetSpec("whatif-e", num_blocks=8),
            candidates=[CategoryOneCandidate(2), CategoryOneCandidate(4)],
        )
        assert a1.best == a2.best
        assert a1.predicted_duration == a2.predicted_duration
