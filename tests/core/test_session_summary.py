"""Tests for the tuning-session summary."""

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.mapreduce.jobspec import JobSpec, WorkloadProfile
from repro.workloads.datasets import DatasetSpec


def run_session(strategy):
    sc = SimCluster(
        seed=0, cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
    )
    DatasetSpec("sumry", num_blocks=40).load(sc.hdfs, "/in")
    profile = WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0
    )
    spec = JobSpec(name="t", workload=profile, input_path="/in", num_reducers=8)
    tuner = OnlineTuner(
        strategy,
        settings=TunerSettings(
            hill_climb=HillClimbSettings(m=6, n=4, global_search_limit=1),
            conservative_window=6,
            use_knowledge_base=False,
        ),
        rng=np.random.default_rng(0),
    )
    am = tuner.submit(sc, spec)
    sc.sim.run_until_complete(am.completion)
    return tuner.session_summary(spec.job_id)


def test_aggressive_summary_shape():
    summary = run_session(TuningStrategy.AGGRESSIVE)
    assert summary["strategy"] == "aggressive"
    assert set(summary["searches"]) == {"map", "reduce"}
    map_search = summary["searches"]["map"]
    assert map_search["tasks_evaluated"] == 40
    assert map_search["samples_proposed"] > 0
    assert "mapreduce.task.io.sort.mb" in summary["recommended"]


def test_conservative_summary_shape():
    summary = run_session(TuningStrategy.CONSERVATIVE)
    assert summary["strategy"] == "conservative"
    assert summary["tasks_observed"]["map"] == 40
    assert summary["rule_adjustments"] >= 0
