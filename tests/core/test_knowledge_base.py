"""Tests for the tuning knowledge base."""


from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.core.knowledge_base import TuningKnowledgeBase, size_bucket

GB = 1024**3


class TestSizeBucket:
    def test_powers_of_two(self):
        assert size_bucket(1 * GB) == 0
        assert size_bucket(2 * GB) == 1
        assert size_bucket(64 * GB) == 6

    def test_sub_gb_floors_to_zero(self):
        assert size_bucket(100) == 0

    def test_100gb_and_90gb_nearby(self):
        assert abs(size_bucket(100 * GB) - size_bucket(90 * GB)) <= 1


class TestRecordLookup:
    def test_roundtrip(self):
        kb = TuningKnowledgeBase()
        cfg = Configuration({P.IO_SORT_MB: 250})
        kb.record("terasort", 100 * GB, cfg, cost=1.5, job_duration=500)
        found = kb.lookup("terasort", 100 * GB)
        assert found[P.IO_SORT_MB] == 250

    def test_best_config_kept(self):
        kb = TuningKnowledgeBase()
        kb.record("ts", 100 * GB, Configuration({P.IO_SORT_MB: 100}), 3.0, 900)
        kb.record("ts", 100 * GB, Configuration({P.IO_SORT_MB: 250}), 1.0, 500)
        kb.record("ts", 100 * GB, Configuration({P.IO_SORT_MB: 400}), 2.0, 700)
        assert kb.lookup("ts", 100 * GB)[P.IO_SORT_MB] == 250

    def test_unknown_workload_none(self):
        assert TuningKnowledgeBase().lookup("nope", GB) is None

    def test_nearest_bucket_fallback(self):
        kb = TuningKnowledgeBase()
        kb.record("ts", 64 * GB, Configuration({P.IO_SORT_MB: 300}), 1.0, 500)
        # 100 GB has no exact entry; nearest (64 GB) is returned.
        found = kb.lookup("ts", 100 * GB)
        assert found is not None and found[P.IO_SORT_MB] == 300

    def test_workloads_isolated(self):
        kb = TuningKnowledgeBase()
        kb.record("ts", GB, Configuration({P.IO_SORT_MB: 300}), 1.0, 500)
        assert kb.lookup("wc", GB) is None

    def test_len(self):
        kb = TuningKnowledgeBase()
        kb.record("a", GB, Configuration(), 1.0, 1.0)
        kb.record("b", GB, Configuration(), 1.0, 1.0)
        assert len(kb) == 2


class TestPersistence:
    def test_json_roundtrip(self):
        kb = TuningKnowledgeBase()
        kb.record("ts", 100 * GB, Configuration({P.IO_SORT_MB: 250}), 1.5, 500)
        restored = TuningKnowledgeBase.from_json(kb.to_json())
        assert restored.lookup("ts", 100 * GB)[P.IO_SORT_MB] == 250

    def test_save_load_file(self, tmp_path):
        kb = TuningKnowledgeBase()
        kb.record("wc", 90 * GB, Configuration({P.SHUFFLE_PARALLELCOPIES: 20}), 2.0, 600)
        path = str(tmp_path / "kb.json")
        kb.save(path)
        restored = TuningKnowledgeBase.load(path)
        assert restored.lookup("wc", 90 * GB)[P.SHUFFLE_PARALLELCOPIES] == 20
