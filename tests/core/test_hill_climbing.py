"""Tests for Algorithm 1, the gray-box smart hill climber."""

import numpy as np
import pytest

from repro.core import parameters as P
from repro.core.hill_climbing import (
    GrayBoxHillClimber,
    HillClimbSettings,
    SearchPhase,
)
from repro.core.neighborhood import Bounds, Neighborhood
from repro.core.parameters import PARAMETER_SPACE


def subspace():
    return PARAMETER_SPACE.subspace([P.IO_SORT_MB, P.SORT_SPILL_PERCENT])


def run_to_completion(climber, objective, max_batches=200):
    """Drive the async climber with a synchronous objective function."""
    batches = 0
    while not climber.finished:
        samples = climber.propose()
        if not samples:
            break
        for s in samples:
            climber.observe(s.sample_id, objective(s.point))
        batches += 1
        assert batches < max_batches, "climber failed to terminate"
    return batches


class TestSettings:
    def test_paper_defaults(self):
        st = HillClimbSettings()
        assert st.m == 24 and st.n == 16
        assert st.neighborhood_threshold == 0.1
        assert st.shrink_factor == 0.75
        assert st.global_search_limit == 5
        assert st.lhs_intervals == 24

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"m": 0},
            {"shrink_factor": 1.0},
            {"shrink_factor": 0.0},
            {"neighborhood_threshold": 0.0},
            {"global_search_limit": 0},
            {"replicas": 0},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HillClimbSettings(**kwargs)


class TestProtocol:
    def test_first_batch_is_global_of_size_m(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        samples = climber.propose()
        assert len(samples) == 24
        assert all(s.phase is SearchPhase.GLOBAL for s in samples)

    def test_propose_is_stable_until_observed(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        a = climber.propose()
        b = climber.propose()
        assert [s.sample_id for s in a] == [s.sample_id for s in b]

    def test_partial_observation_keeps_batch_open(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        samples = climber.propose()
        climber.observe(samples[0].sample_id, 1.0)
        assert len(climber.pending_samples()) == len(samples) - 1
        assert climber.phase is SearchPhase.GLOBAL

    def test_full_observation_enters_local_phase(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        for s in climber.propose():
            climber.observe(s.sample_id, float(s.point[0]))
        assert climber.phase is SearchPhase.LOCAL
        local = climber.propose()
        # n fresh samples plus the re-evaluated incumbent.
        assert len(local) == 17
        assert sum(s.incumbent for s in local) == 1
        assert all(s.phase is SearchPhase.LOCAL for s in local)

    def test_incumbent_reevaluated_every_batch(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        for s in climber.propose():
            climber.observe(s.sample_id, float(s.point[0]))
        batch = climber.propose()
        incumbent = next(s for s in batch if s.incumbent)
        assert np.allclose(incumbent.point, climber.best_point())

    def test_unknown_sample_id_rejected(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        climber.propose()
        with pytest.raises(KeyError):
            climber.observe(999_999, 1.0)

    def test_replicas_require_multiple_observations(self):
        st = HillClimbSettings(replicas=2)
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0), st)
        samples = climber.propose()
        for s in samples:
            climber.observe(s.sample_id, 1.0)
        assert climber.phase is SearchPhase.GLOBAL  # still waiting
        for s in samples:
            climber.observe(s.sample_id, 1.0)
        assert climber.phase is SearchPhase.LOCAL


class TestConvergence:
    def test_converges_near_quadratic_optimum(self):
        target = np.array([0.7, 0.3])

        def objective(point):
            return float(np.sum((point - target) ** 2))

        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(42))
        run_to_completion(climber, objective)
        best = climber.best_point()
        assert np.linalg.norm(best - target) < 0.15

    def test_termination_after_g_failed_global_rounds(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        run_to_completion(climber, lambda p: float(np.sum(p)))
        assert climber.finished
        assert climber.global_rounds_without_improvement >= 5

    def test_shrink_on_no_improvement(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(1))
        # Constant objective: local search can never improve, so the
        # neighborhood must shrink by f each local batch.
        for s in climber.propose():
            climber.observe(s.sample_id, 1.0)
        size_before = climber.neighborhood.size
        for s in climber.propose():
            climber.observe(s.sample_id, 1.0)
        assert climber.neighborhood.size == pytest.approx(size_before * 0.75)

    def test_bounds_restrict_samples(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        climber.bounds.raise_lower(0, 0.8)
        for s in climber.propose():
            assert s.point[0] >= 0.8 - 1e-9

    def test_seed_point_injected_into_first_batch(self):
        seed = np.array([0.42, 0.77])
        climber = GrayBoxHillClimber(
            subspace(), np.random.default_rng(0), seed_point=seed
        )
        samples = climber.propose()
        assert any(np.allclose(s.point, seed) for s in samples)

    def test_uniform_sampling_mode(self):
        st = HillClimbSettings(use_lhs=False)
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0), st)
        samples = climber.propose()
        assert len(samples) == 24  # works end to end without LHS
        run_to_completion(climber, lambda p: float(np.sum(p**2)))
        assert climber.finished

    def test_lhs_beats_uniform_on_average(self):
        """The paper's property 3: LHS improves sampling quality.

        Measured as the best first-batch objective value over many seeds
        on a separable function; stratification covers each dimension's
        range, so LHS's expected minimum is lower.
        """
        target = np.array([0.9, 0.1])

        def objective(p):
            return float(np.sum(np.abs(p - target)))

        def best_first_batch(use_lhs, seed):
            st = HillClimbSettings(use_lhs=use_lhs)
            c = GrayBoxHillClimber(subspace(), np.random.default_rng(seed), st)
            return min(objective(s.point) for s in c.propose())

        lhs = np.mean([best_first_batch(True, s) for s in range(30)])
        uni = np.mean([best_first_batch(False, s) for s in range(30)])
        assert lhs <= uni * 1.05  # no worse, typically clearly better

    def test_best_config_decodes(self):
        climber = GrayBoxHillClimber(subspace(), np.random.default_rng(0))
        run_to_completion(climber, lambda p: float(p[0]))
        cfg = climber.best_config()
        # The objective rewards a small first coordinate => io.sort.mb low.
        assert cfg[P.IO_SORT_MB] <= 200


class TestNeighborhoodGeometry:
    def test_shrink_factor_validation(self):
        n = Neighborhood(np.array([0.5]), 0.4)
        with pytest.raises(ValueError):
            n.shrink(1.5)

    def test_recenter_restores_size(self):
        n = Neighborhood(np.array([0.5]), 0.1)
        n2 = n.recenter(np.array([0.2]), 0.5)
        assert n2.size == 0.5
        assert n2.center[0] == 0.2

    def test_sampling_bounds_clip_to_unit(self):
        b = Bounds(1)
        n = Neighborhood(np.array([0.05]), 0.4)
        (lo, hi), = n.sampling_bounds(b)
        assert lo == 0.0
        assert hi == pytest.approx(0.25)

    def test_sampling_bounds_respect_rule_bounds(self):
        b = Bounds(1)
        b.raise_lower(0, 0.6)
        n = Neighborhood(np.array([0.5]), 0.2)
        (lo, hi), = n.sampling_bounds(b)
        assert lo == pytest.approx(0.6)
        assert hi == pytest.approx(0.6)  # collapsed to the feasible edge

    def test_bounds_volume(self):
        b = Bounds(2)
        b.raise_lower(0, 0.5)
        assert b.volume() == pytest.approx(0.5)
