"""Tests for counters, job specs, and the shuffle catalog."""

import numpy as np
import pytest

from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.jobspec import JobSpec, WorkloadProfile
from repro.mapreduce.shuffle import MapOutputCatalog
from repro.sim import Simulator


def profile(**over):
    base = dict(name="p", map_output_ratio=1.0, map_output_record_size=100.0)
    base.update(over)
    return WorkloadProfile(**base)


class TestCounters:
    def test_default_zero(self):
        assert Counters().get(Counter.SPILLED_RECORDS) == 0

    def test_increment(self):
        c = Counters()
        c.increment(Counter.SPILLED_RECORDS, 10)
        c.increment(Counter.SPILLED_RECORDS, 5)
        assert c[Counter.SPILLED_RECORDS] == 15

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment(Counter.MAP_OUTPUT_RECORDS, 3)
        b.increment(Counter.MAP_OUTPUT_RECORDS, 4)
        b.increment(Counter.SPILLED_RECORDS, 1)
        a.merge(b)
        assert a[Counter.MAP_OUTPUT_RECORDS] == 7
        assert a[Counter.SPILLED_RECORDS] == 1

    def test_snapshot_is_string_keyed_and_sorted(self):
        c = Counters()
        c.increment(Counter.SPILLED_RECORDS, 2)
        c.increment(Counter.CPU_MILLISECONDS, 1)
        snap = c.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["SPILLED_RECORDS"] == 2

    def test_copy_independent(self):
        a = Counters()
        a.increment(Counter.SPILLED_RECORDS, 1)
        b = a.copy()
        b.increment(Counter.SPILLED_RECORDS, 1)
        assert a[Counter.SPILLED_RECORDS] == 1


class TestJobSpec:
    def test_task_ids_format(self):
        spec = JobSpec(name="x", workload=profile(), input_path="/in", num_reducers=2)
        tid = spec.map_task_id(3)
        assert str(tid).endswith("_m_000003")
        assert str(spec.reduce_task_id(0)).endswith("_r_000000")

    def test_job_ids_unique(self):
        a = JobSpec(name="x", workload=profile(), input_path="/in", num_reducers=1)
        b = JobSpec(name="x", workload=profile(), input_path="/in", num_reducers=1)
        assert a.job_id != b.job_id

    def test_output_path_defaulted(self):
        spec = JobSpec(name="x", workload=profile(), input_path="/in", num_reducers=1)
        assert spec.output_path.startswith("/out/")

    def test_invalid_reducers(self):
        with pytest.raises(ValueError):
            JobSpec(name="x", workload=profile(), input_path="/in", num_reducers=0)

    def test_invalid_slowstart(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="x", workload=profile(), input_path="/in",
                num_reducers=1, slowstart=1.5,
            )

    def test_combiner_ratio_requires_combiner(self):
        with pytest.raises(ValueError):
            profile(combiner_record_ratio=0.5)

    def test_negative_output_ratio_rejected(self):
        with pytest.raises(ValueError):
            profile(map_output_ratio=-1.0)


class TestMapOutputCatalog:
    def make(self, maps=4, reducers=2):
        sim = Simulator()
        return sim, MapOutputCatalog(sim, maps, reducers)

    def test_registration_and_cursor(self):
        _sim, cat = self.make()
        cat.register_map_output(0, node_id=1, partitions=np.array([10.0, 20.0]))
        cursor, fresh = cat.new_outputs_since(0)
        assert fresh == [0]
        cursor, fresh = cat.new_outputs_since(cursor)
        assert fresh == []

    def test_double_registration_first_wins(self):
        # Speculative twins can both finish; the first registration wins
        # and the duplicate is ignored.
        _sim, cat = self.make()
        assert cat.register_map_output(0, 1, np.array([1.0, 1.0]))
        assert not cat.register_map_output(0, 2, np.array([9.0, 9.0]))
        assert cat.partition_bytes(0, 0) == 1.0
        assert cat.source_nodes([0]) == [1]

    def test_wrong_partition_count_rejected(self):
        _sim, cat = self.make()
        with pytest.raises(ValueError):
            cat.register_map_output(0, 1, np.array([1.0]))

    def test_maps_done_after_all_register(self):
        _sim, cat = self.make(maps=2)
        cat.register_map_output(0, 1, np.array([1.0, 1.0]))
        assert not cat.maps_done
        cat.register_map_output(1, 1, np.array([1.0, 1.0]))
        assert cat.maps_done

    def test_waiters_woken_on_registration(self):
        sim, cat = self.make()
        ev = cat.wait_for_news()
        cat.register_map_output(0, 1, np.array([1.0, 1.0]))
        sim.run()
        assert ev.triggered

    def test_batch_bytes_for_reducer(self):
        _sim, cat = self.make()
        cat.register_map_output(0, 1, np.array([10.0, 20.0]))
        cat.register_map_output(1, 2, np.array([5.0, 5.0]))
        assert cat.batch_bytes_for_reducer([0, 1], 0) == 15.0
        assert cat.total_bytes_for_reducer(1) == 25.0

    def test_mark_all_maps_done_wakes(self):
        sim, cat = self.make()
        ev = cat.wait_for_news()
        cat.mark_all_maps_done()
        sim.run()
        assert ev.triggered and cat.maps_done

    def test_source_nodes(self):
        _sim, cat = self.make()
        cat.register_map_output(0, 7, np.array([1.0, 1.0]))
        assert cat.source_nodes([0]) == [7]
