"""Integration tests for the map and reduce task processes."""

import numpy as np
import pytest

from repro.cluster.container import Container
from repro.cluster.topology import Cluster, ClusterSpec
from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.dataflow import JobDataflow
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.mapreduce.map_task import run_map_task
from repro.mapreduce.reduce_task import run_reduce_task
from repro.mapreduce.shuffle import MapOutputCatalog
from repro.mapreduce.task_context import (
    CONTAINER_LAUNCH_OVERHEAD,
    TaskContext,
    allocated_cores,
    effective_core_cap,
)
from repro.sim import Simulator

MB = 1024**2
GB = 1024**3


def build(profile=None, blocks=2, reducers=2):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_slaves=4, racks=(2, 2)))
    fs = HdfsFileSystem(cluster, rng=np.random.default_rng(1))
    f = fs.create_file("/in", blocks * fs.block_size)
    profile = profile or WorkloadProfile(
        name="t",
        map_output_ratio=1.0,
        map_output_record_size=100.0,
        map_output_noise=0.0,
        partition_skew=0.0,
        map_fixed_mem_bytes=150 * MB,
        reduce_fixed_mem_bytes=200 * MB,
    )
    spec = JobSpec(name="t", workload=profile, input_path="/in", num_reducers=reducers)
    df = JobDataflow(spec, f, rng=np.random.default_rng(0))
    cat = MapOutputCatalog(sim, df.num_maps, df.num_reducers)
    ctx = TaskContext(sim, cluster, fs, spec, df, cat)
    return ctx, f


def run_map(ctx, f, config=None, map_index=0):
    config = config or Configuration()
    node = ctx.cluster.nodes[0]
    container = Container(node, config.map_memory_bytes, 1, "app")
    proc = ctx.sim.process(
        run_map_task(ctx, map_index, f.blocks[map_index], container, config)
    )
    return ctx.sim.run_until_complete(proc)


class TestMapTask:
    def test_successful_map_stats(self):
        ctx, f = build()
        stats = run_map(ctx, f)
        assert not stats.failed
        assert stats.task_type is TaskType.MAP
        assert stats.duration > CONTAINER_LAUNCH_OVERHEAD
        assert stats.map_output_bytes == pytest.approx(128 * MB)
        assert stats.cpu_seconds > 0
        assert 0 < stats.memory_utilization <= 1

    def test_output_registered_in_catalog(self):
        ctx, f = build()
        run_map(ctx, f)
        assert ctx.catalog.completed_maps == 1
        assert ctx.catalog.total_bytes_for_reducer(0) > 0

    def test_default_buffer_spills_twice(self):
        ctx, f = build()
        stats = run_map(ctx, f)
        # 128 MB output vs 100 MB buffer at 0.8: two spills, 2x records.
        assert stats.spilled_records == pytest.approx(2 * stats.map_output_records)

    def test_big_buffer_single_spill(self):
        ctx, f = build()
        cfg = Configuration({P.MAP_MEMORY_MB: 1024, P.IO_SORT_MB: 160, P.SORT_SPILL_PERCENT: 0.99})
        stats = run_map(ctx, f, cfg)
        assert stats.spilled_records == stats.map_output_records

    def test_oom_when_buffer_exceeds_heap(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_fixed_mem_bytes=700 * MB, map_output_noise=0.0,
        )
        ctx, f = build(profile)
        cfg = Configuration({P.MAP_MEMORY_MB: 1024, P.IO_SORT_MB: 300})
        stats = run_map(ctx, f, cfg)
        assert stats.failed
        assert "OutOfMemory" in stats.failure_reason
        # A failed map must not publish output.
        assert ctx.catalog.completed_maps == 0

    def test_compute_bound_profile_dominated_by_cpu(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=0.001, map_output_record_size=100.0,
            map_cpu_fixed_sec=60.0, map_output_noise=0.0, partition_skew=0.0,
        )
        ctx, f = build(profile)
        stats = run_map(ctx, f)
        assert stats.duration > 55.0
        assert stats.cpu_utilization > 0.9


class TestReduceTask:
    def run_reduce(self, ctx, config=None, reduce_index=0):
        config = config or Configuration()
        node = ctx.cluster.nodes[1]
        container = Container(node, config.reduce_memory_bytes, 1, "app")
        proc = ctx.sim.process(
            run_reduce_task(ctx, reduce_index, container, config)
        )
        return proc

    def test_reduce_waits_for_maps_then_finishes(self):
        ctx, f = build()
        proc = self.run_reduce(ctx)
        # Run the maps afterwards: the reducer must consume both outputs.
        for i in range(2):
            run_map(ctx, f, map_index=i)
        stats = ctx.sim.run_until_complete(proc)
        assert not stats.failed
        assert stats.shuffled_bytes == pytest.approx(128 * MB, rel=0.01)

    def test_reduce_output_written_to_hdfs(self):
        ctx, f = build()
        proc = self.run_reduce(ctx)
        for i in range(2):
            run_map(ctx, f, map_index=i)
        ctx.sim.run_until_complete(proc)
        out = f"{ctx.spec.output_path}/part-00000"
        assert ctx.hdfs.exists(out)

    def test_generous_buffers_no_reduce_spills(self):
        ctx, f = build()
        cfg = Configuration(
            {
                P.REDUCE_MEMORY_MB: 1024,
                P.SHUFFLE_INPUT_BUFFER_PERCENT: 0.85,
                P.SHUFFLE_MERGE_PERCENT: 0.85,
                P.REDUCE_INPUT_BUFFER_PERCENT: 0.6,
                P.MERGE_INMEM_THRESHOLD: 0,
            }
        )
        proc = self.run_reduce(ctx, cfg)
        for i in range(2):
            run_map(ctx, f, map_index=i)
        stats = ctx.sim.run_until_complete(proc)
        assert stats.spilled_records == 0

    def test_reduce_oom_on_excessive_retention(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            reduce_fixed_mem_bytes=800 * MB, map_output_noise=0.0,
            partition_skew=0.0,
        )
        ctx, f = build(profile)
        cfg = Configuration(
            {
                P.REDUCE_MEMORY_MB: 1024,
                P.SHUFFLE_INPUT_BUFFER_PERCENT: 0.9,
                P.SHUFFLE_MERGE_PERCENT: 0.9,
                P.REDUCE_INPUT_BUFFER_PERCENT: 0.9,
                P.MERGE_INMEM_THRESHOLD: 0,
            }
        )
        proc = self.run_reduce(ctx, cfg)
        for i in range(2):
            run_map(ctx, f, map_index=i)
        stats = ctx.sim.run_until_complete(proc)
        assert stats.failed
        assert "OutOfMemory" in stats.failure_reason


class TestCoreHelpers:
    def test_allocated_cores_with_burst(self):
        # 1 vcore at 0.25 cores/vcore with 4x burst = 1 core entitlement.
        assert allocated_cores(0.25, 1) == pytest.approx(1.0)
        assert allocated_cores(0.25, 4) == pytest.approx(4.0)

    def test_effective_cap_limited_by_parallelism(self):
        assert effective_core_cap(0.25, 8, parallelism=1.0) == pytest.approx(1.0)
        assert effective_core_cap(0.25, 2, parallelism=4.0) == pytest.approx(2.0)
