"""Tests for the Hadoop sort/spill/merge planning model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.sortspill import merge_passes, plan_map_spills, plan_reduce_merge

MB = 1024**2


class TestMergePasses:
    @pytest.mark.parametrize(
        "segments,fan_in,expected",
        [
            (0, 10, 0),
            (1, 10, 0),
            (2, 10, 1),
            (10, 10, 1),
            (11, 10, 2),
            (100, 10, 2),
            (101, 10, 3),
            (5, 2, 3),
        ],
    )
    def test_cases(self, segments, fan_in, expected):
        assert merge_passes(segments, fan_in) == expected

    def test_fan_in_validation(self):
        with pytest.raises(ValueError):
            merge_passes(5, 1)


class TestMapSpills:
    def test_single_spill_is_optimal(self):
        """One spill: records hit disk exactly once (the paper's Optimal)."""
        plan = plan_map_spills(
            output_records=1000,
            output_bytes=50 * MB,
            sort_buffer_bytes=100 * MB,
            spill_percent=0.8,
            sort_factor=10,
        )
        assert plan.num_spills == 1
        assert plan.spilled_records == 1000
        assert plan.merge_rounds == 0
        assert plan.merge_read_bytes == 0

    def test_default_terasort_split_spills_twice(self):
        """A 134 MB map output against the default 100 MB buffer at 0.8."""
        plan = plan_map_spills(
            output_records=1_340_000,
            output_bytes=134 * MB,
            sort_buffer_bytes=100 * MB,
            spill_percent=0.8,
            sort_factor=10,
        )
        assert plan.num_spills == 2
        # One merge pass: every record written twice.
        assert plan.spilled_records == 2 * 1_340_000

    def test_worst_case_three_x(self):
        """Many tiny spills with a small fan-in: the paper's 3x bound."""
        plan = plan_map_spills(
            output_records=1000,
            output_bytes=100 * MB,
            sort_buffer_bytes=2 * MB,
            spill_percent=0.8,
            sort_factor=10,
        )
        assert plan.num_spills > 10
        assert plan.spilled_records == 3 * 1000

    def test_combiner_reduces_volume(self):
        plan = plan_map_spills(
            output_records=1000,
            output_bytes=50 * MB,
            sort_buffer_bytes=100 * MB,
            spill_percent=0.8,
            sort_factor=10,
            has_combiner=True,
            combiner_record_ratio=0.2,
            combiner_byte_ratio=0.2,
        )
        assert plan.output_records == 200
        assert plan.output_bytes == pytest.approx(10 * MB)
        assert plan.spilled_records == 200

    def test_zero_output(self):
        plan = plan_map_spills(0, 0.0, 100 * MB, 0.8, 10)
        assert plan.spilled_records == 0
        assert plan.total_disk_write_bytes == 0

    def test_spill_percent_bounds(self):
        with pytest.raises(ValueError):
            plan_map_spills(10, 10.0, 100 * MB, 0.0, 10)
        with pytest.raises(ValueError):
            plan_map_spills(10, 10.0, 100 * MB, 1.2, 10)

    def test_negative_output_rejected(self):
        with pytest.raises(ValueError):
            plan_map_spills(-1, 10.0, 100 * MB, 0.8, 10)

    @given(
        records=st.integers(1, 10**7),
        out_mb=st.floats(0.1, 2000),
        buf_mb=st.floats(1, 2000),
        spill_pct=st.floats(0.5, 0.99),
        factor=st.integers(2, 100),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants(self, records, out_mb, buf_mb, spill_pct, factor):
        plan = plan_map_spills(records, out_mb * MB, buf_mb * MB, spill_pct, factor)
        # Records hit disk at least once and at most (1 + passes) times.
        assert plan.spilled_records >= plan.output_records
        assert plan.spilled_records <= plan.output_records * (1 + plan.merge_rounds)
        # Merge I/O is symmetric and proportional to rounds.
        assert plan.merge_read_bytes == plan.merge_write_bytes
        assert plan.output_bytes > 0

    @given(
        small=st.floats(10, 100),
        factor=st.integers(2, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_bigger_buffer_never_spills_more(self, small, factor):
        out = 500 * MB
        p_small = plan_map_spills(1000, out, small * MB, 0.8, factor)
        p_big = plan_map_spills(1000, out, (small * 4) * MB, 0.8, factor)
        assert p_big.num_spills <= p_small.num_spills
        assert p_big.spilled_records <= p_small.spilled_records


class TestReduceMerge:
    def kwargs(self, **over):
        base = dict(
            input_bytes=500 * MB,
            input_records=5_000_000,
            num_segments=700,
            heap_bytes=819 * MB,
            shuffle_input_buffer_percent=0.7,
            shuffle_merge_percent=0.66,
            shuffle_memory_limit_percent=0.25,
            merge_inmem_threshold=1000,
            reduce_input_buffer_percent=0.0,
            sort_factor=10,
        )
        base.update(over)
        return base

    def test_default_config_spills(self):
        plan = plan_reduce_merge(**self.kwargs())
        assert plan.spilled_records > 0
        assert plan.total_disk_write_bytes > 0

    def test_generous_buffers_zero_spills(self):
        plan = plan_reduce_merge(
            **self.kwargs(
                heap_bytes=1638 * MB,
                shuffle_input_buffer_percent=0.85,
                shuffle_merge_percent=0.85,
                merge_inmem_threshold=0,
                reduce_input_buffer_percent=0.8,
            )
        )
        assert plan.spilled_records == 0
        assert plan.retained_in_memory_bytes == pytest.approx(500 * MB)
        assert plan.final_read_bytes == 0

    def test_oversized_segments_bypass_memory(self):
        plan = plan_reduce_merge(
            **self.kwargs(num_segments=2, shuffle_memory_limit_percent=0.1)
        )
        assert plan.direct_to_disk_bytes == pytest.approx(500 * MB)

    def test_zero_input(self):
        plan = plan_reduce_merge(**self.kwargs(input_bytes=0.0, input_records=0))
        assert plan.spilled_records == 0
        assert plan.total_disk_read_bytes == 0

    def test_inmem_threshold_forces_flushes(self):
        free = plan_reduce_merge(**self.kwargs(merge_inmem_threshold=0))
        tight = plan_reduce_merge(**self.kwargs(merge_inmem_threshold=10))
        assert tight.inmem_spill_bytes >= free.inmem_spill_bytes

    def test_reduce_input_buffer_retains(self):
        none = plan_reduce_merge(**self.kwargs(reduce_input_buffer_percent=0.0))
        some = plan_reduce_merge(**self.kwargs(reduce_input_buffer_percent=0.5))
        assert some.retained_in_memory_bytes >= none.retained_in_memory_bytes

    def test_heap_validation(self):
        with pytest.raises(ValueError):
            plan_reduce_merge(**self.kwargs(heap_bytes=0))

    @given(
        input_mb=st.floats(1, 4000),
        heap_mb=st.floats(100, 4000),
        ibp=st.floats(0.2, 0.9),
        merge=st.floats(0.2, 0.9),
        limit=st.floats(0.1, 0.7),
        thresh=st.integers(0, 5000),
        rib=st.floats(0.0, 0.9),
        segments=st.integers(1, 800),
        factor=st.integers(2, 100),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants(self, input_mb, heap_mb, ibp, merge, limit, thresh, rib, segments, factor):
        plan = plan_reduce_merge(
            input_bytes=input_mb * MB,
            input_records=int(input_mb * 1000),
            num_segments=segments,
            heap_bytes=heap_mb * MB,
            shuffle_input_buffer_percent=ibp,
            shuffle_merge_percent=min(merge, ibp),
            shuffle_memory_limit_percent=min(limit, merge, ibp),
            merge_inmem_threshold=thresh,
            reduce_input_buffer_percent=rib,
            sort_factor=factor,
        )
        total_in = input_mb * MB
        # Conservation: retained + disk-landed bytes == input.
        landed = plan.direct_to_disk_bytes + plan.inmem_spill_bytes
        assert landed + plan.retained_in_memory_bytes == pytest.approx(total_in, rel=1e-6)
        # The final merge rereads exactly what landed on disk.
        assert plan.final_read_bytes == pytest.approx(landed, rel=1e-6)
        assert plan.spilled_records >= 0
        assert plan.disk_merge_read_bytes == plan.disk_merge_write_bytes
