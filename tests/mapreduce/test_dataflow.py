"""Tests for the per-job dataflow model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import Cluster, ClusterSpec
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.dataflow import JobDataflow
from repro.mapreduce.jobspec import JobSpec, WorkloadProfile
from repro.sim import Simulator

MB = 1024**2


def make_dataflow(profile=None, blocks=8, num_reducers=4, seed=0):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_slaves=4, racks=(2, 2)))
    fs = HdfsFileSystem(cluster, rng=np.random.default_rng(1))
    f = fs.create_file("/in", blocks * fs.block_size)
    profile = profile or WorkloadProfile(
        name="t", map_output_ratio=1.0, map_output_record_size=100.0
    )
    spec = JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=num_reducers
    )
    return JobDataflow(spec, f, rng=np.random.default_rng(seed))


class TestMapVolumes:
    def test_num_maps_equals_blocks(self):
        df = make_dataflow(blocks=8)
        assert df.num_maps == 8

    def test_map_input_matches_block(self):
        df = make_dataflow()
        assert df.map_input_bytes(0) == 128 * MB

    def test_output_ratio_applied(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=0.5, map_output_record_size=100.0,
            map_output_noise=0.0,
        )
        df = make_dataflow(profile)
        out_bytes, out_records = df.map_output(0)
        assert out_bytes == pytest.approx(64 * MB)
        assert out_records == pytest.approx(64 * MB / 100, rel=0.01)

    def test_noise_perturbs_but_preserves_mean(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            map_output_noise=0.2,
        )
        df = make_dataflow(profile, blocks=64)
        outs = df.map_output_bytes
        assert outs.std() > 0
        assert outs.mean() == pytest.approx(128 * MB, rel=0.1)

    def test_deterministic_under_seed(self):
        a = make_dataflow(seed=5)
        b = make_dataflow(seed=5)
        assert (a.map_output_bytes == b.map_output_bytes).all()
        assert (a.partition_weights == b.partition_weights).all()

    def test_different_seeds_differ(self):
        a = make_dataflow(seed=5)
        b = make_dataflow(seed=6)
        assert not (a.map_output_bytes == b.map_output_bytes).all()


class TestPartitions:
    def test_weights_normalized(self):
        df = make_dataflow(num_reducers=16)
        assert df.partition_weights.sum() == pytest.approx(1.0)
        assert (df.partition_weights > 0).all()

    def test_zero_skew_is_uniform(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            partition_skew=0.0,
        )
        df = make_dataflow(profile, num_reducers=8)
        assert np.allclose(df.partition_weights, 1 / 8)

    def test_skew_spreads_weights(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            partition_skew=0.5,
        )
        df = make_dataflow(profile, num_reducers=32)
        assert df.partition_weights.max() > 2 * df.partition_weights.min()

    def test_partitions_sum_to_map_output(self):
        df = make_dataflow()
        parts = df.partitions_for_map(0, 100 * MB)
        assert parts.sum() == pytest.approx(100 * MB)

    @given(skew=st.floats(0.0, 1.0), reducers=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_weights_always_a_distribution(self, skew, reducers):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            partition_skew=skew,
        )
        df = make_dataflow(profile, num_reducers=reducers)
        assert df.partition_weights.sum() == pytest.approx(1.0)
        assert (df.partition_weights >= 0).all()


class TestJobExpectations:
    def test_total_input(self):
        df = make_dataflow(blocks=8)
        assert df.total_input_bytes == 8 * 128 * MB

    def test_expected_shuffle_without_combiner(self):
        df = make_dataflow()
        assert df.expected_shuffle_bytes == pytest.approx(
            df.map_output_bytes.sum()
        )

    def test_expected_shuffle_with_combiner(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            has_combiner=True, combiner_record_ratio=0.25, combiner_byte_ratio=0.25,
        )
        df = make_dataflow(profile)
        assert df.expected_shuffle_bytes == pytest.approx(
            df.map_output_bytes.sum() * 0.25
        )

    def test_reduce_output_applies_ratio(self):
        profile = WorkloadProfile(
            name="t", map_output_ratio=1.0, map_output_record_size=100.0,
            reduce_output_ratio=0.3,
        )
        df = make_dataflow(profile)
        assert df.reduce_output_bytes(100.0) == pytest.approx(30.0)
