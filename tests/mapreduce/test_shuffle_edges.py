"""Shuffle edge cases: empty map outputs, eager reducers, one copier.

Each scenario runs twice -- once on the legacy aggregated fetch path
and once with the per-fetch recovery path armed (a no-op
``link_degrade`` with ``net_factor=1.0`` flips the gate without
perturbing anything) -- so both shuffle implementations cover the same
edges.
"""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.configuration import Configuration
from repro.core.parameters import SHUFFLE_PARALLELCOPIES
from repro.experiments.harness import SimCluster
from repro.faults import Fault, FaultPlan
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.testing import assert_no_output_leaks
from repro.workloads.datasets import DatasetSpec

MB = 1024**2

#: Arms the per-fetch shuffle path without changing any capacity.
NOOP_NETWORK_PLAN = FaultPlan(
    (Fault(time=0.0, kind="link_degrade", node_id=0, net_factor=1.0),)
)


def small_cluster(seed=0):
    return SimCluster(
        seed=seed,
        cluster_spec=ClusterSpec(num_slaves=4, racks=(2, 2)),
        start_monitors=False,
    )


def run_job(sc, output_ratio=1.0, slowstart=0.05, config=None, blocks=8, reducers=4):
    DatasetSpec("tiny", num_blocks=blocks).load(sc.hdfs, "/in")
    profile = WorkloadProfile(
        name="t", map_output_ratio=output_ratio, map_output_record_size=100.0,
        map_output_noise=0.0, partition_skew=0.0,
        map_fixed_mem_bytes=150 * MB, reduce_fixed_mem_bytes=200 * MB,
    )
    spec = JobSpec(
        name="t", workload=profile, input_path="/in", num_reducers=reducers,
        base_config=config or Configuration(), slowstart=slowstart,
    )
    am = sc.submit(spec)
    return sc.sim.run_until_complete(am.completion)


@pytest.fixture(params=["legacy", "recovery"])
def cluster(request):
    sc = small_cluster()
    if request.param == "recovery":
        sc.inject_faults(plan=NOOP_NETWORK_PLAN)
    return sc


class TestShuffleEdges:
    def test_zero_length_map_outputs(self, cluster):
        result = run_job(cluster, output_ratio=0.0)
        assert result.succeeded
        ok_reds = [s for s in result.stats_of(TaskType.REDUCE) if not s.failed]
        assert len(ok_reds) == 4
        assert all(s.shuffled_bytes == 0 for s in ok_reds)
        assert_no_output_leaks(cluster.hdfs)

    def test_reducers_start_before_any_map_finishes(self, cluster):
        result = run_job(cluster, slowstart=0.0)
        assert result.succeeded
        maps = result.stats_of(TaskType.MAP)
        reds = [s for s in result.stats_of(TaskType.REDUCE) if not s.failed]
        # With slowstart=0 every reducer launches immediately; at least
        # one must have started before the first map finished.
        first_map_done = min(s.end_time for s in maps)
        assert any(r.start_time < first_map_done for r in reds)
        assert all(r.shuffled_bytes > 0 for r in reds)
        assert_no_output_leaks(cluster.hdfs)

    def test_single_parallel_copy(self, cluster):
        config = Configuration({SHUFFLE_PARALLELCOPIES: 1})
        result = run_job(cluster, config=config)
        assert result.succeeded
        reds = [s for s in result.stats_of(TaskType.REDUCE) if not s.failed]
        assert len(reds) == 4
        assert all(r.shuffled_bytes > 0 for r in reds)
        assert_no_output_leaks(cluster.hdfs)


class TestPathEquivalence:
    def test_noop_network_plan_matches_legacy_completion(self):
        """Both paths deliver identical bytes; only timing may differ."""
        plain = small_cluster()
        r1 = run_job(plain)
        armed = small_cluster()
        armed.inject_faults(plan=NOOP_NETWORK_PLAN)
        r2 = run_job(armed)
        assert r1.succeeded and r2.succeeded
        b1 = sorted(s.shuffled_bytes for s in r1.stats_of(TaskType.REDUCE))
        b2 = sorted(s.shuffled_bytes for s in r2.stats_of(TaskType.REDUCE))
        assert b1 == pytest.approx(b2)
