"""Unit tests for the exporters: JSONL, Chrome trace, metrics summary."""

import json

from repro.telemetry import (
    ChromeTraceExporter,
    ContainerGranted,
    JsonlExporter,
    MetricsSummary,
    TaskPhaseSpan,
    TelemetryBus,
    WaveOpened,
)


def make_bus():
    return TelemetryBus(clock=lambda: 0.0)


def sample_events():
    return [
        ContainerGranted(
            time=1.0, node_id=2, container_id=5, memory_bytes=1024.0, cores=1.0
        ),
        TaskPhaseSpan(
            time=8.0,
            name="map.read",
            start=3.0,
            node_id=2,
            track="container-5",
            job_id="job_1",
            task="job_1_m_000000",
            attempt=1,
            detail={"input_bytes": 4096},
        ),
        WaveOpened(time=9.0, job_id="job_1", task_type="map", wave=1, num_configs=4),
    ]


class TestJsonlExporter:
    def test_records_and_key_order(self):
        bus = make_bus()
        exporter = JsonlExporter().attach(bus)
        for ev in sample_events():
            bus.emit(ev)
        assert len(exporter.records) == 3
        first = exporter.records[0]
        assert list(first)[:3] == ["time", "category", "kind"]
        assert first["kind"] == "container_granted"
        assert first["node_id"] == 2

    def test_dumps_is_valid_jsonl(self):
        bus = make_bus()
        exporter = JsonlExporter().attach(bus)
        for ev in sample_events():
            bus.emit(ev)
        lines = exporter.dumps().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert parsed[1]["detail"] == {"input_bytes": 4096}
        assert parsed[2]["category"] == "tuner"

    def test_digest_is_a_function_of_the_stream(self):
        a, b = JsonlExporter(), JsonlExporter()
        for exporter in (a, b):
            bus = make_bus()
            exporter.attach(bus)
            for ev in sample_events():
                bus.emit(ev)
        assert a.digest() == b.digest()
        extra = make_bus()
        b.attach(extra)
        extra.emit(WaveOpened(time=10.0, wave=2))
        assert a.digest() != b.digest()

    def test_save_round_trips(self, tmp_path):
        bus = make_bus()
        exporter = JsonlExporter().attach(bus)
        bus.emit(sample_events()[0])
        path = tmp_path / "trace.jsonl"
        exporter.save(str(path))
        assert path.read_text() == exporter.dumps()


class TestChromeTraceExporter:
    def collect(self):
        bus = make_bus()
        exporter = ChromeTraceExporter().attach(bus)
        for ev in sample_events():
            bus.emit(ev)
        return exporter

    def test_document_shape(self):
        doc = json.loads(self.collect().to_json())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)

    def test_process_and_thread_metadata(self):
        events = self.collect().trace_events()
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["args"]["name"]) for e in meta}
        # pid 0 hosts the cluster-wide tuner event; pid 3 is node 2.
        assert ("process_name", 0, "cluster") in names
        assert ("process_name", 3, "node-2") in names
        assert any(n[0] == "thread_name" and n[2] == "container-5" for n in names)

    def test_span_becomes_complete_event_in_microseconds(self):
        events = self.collect().trace_events()
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        (sl,) = slices
        assert sl["name"] == "map.read"
        assert sl["ts"] == 3.0 * 1e6
        assert sl["dur"] == 5.0 * 1e6
        assert sl["args"]["detail"] == {"input_bytes": 4096}

    def test_point_events_become_instants(self):
        events = self.collect().trace_events()
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"container_granted", "wave_opened"}
        for e in instants:
            assert e["s"] == "t"

    def test_tids_stable_under_event_reordering(self):
        a = self.collect()
        bus = make_bus()
        b = ChromeTraceExporter().attach(bus)
        for ev in reversed(sample_events()):
            bus.emit(ev)

        def layout(exporter):
            return {
                (e["pid"], e["tid"], e["args"]["name"])
                for e in exporter.trace_events()
                if e["ph"] == "M" and e["name"] == "thread_name"
            }

        assert layout(a) == layout(b)


class TestMetricsSummary:
    def test_counts_spans_and_counters(self):
        bus = make_bus()
        summary = MetricsSummary().attach(bus, categories=("yarn", "task", "tuner"))
        for ev in sample_events():
            bus.emit(ev)
        bus.increment("yarn.containers_granted")
        d = summary.as_dict()
        assert d["events"]["yarn.container_granted"] == 1
        assert d["events"]["task.phase"] == 1
        assert d["spans"]["map.read"] == {"count": 1, "total_seconds": 5.0}
        assert d["counters"] == {"yarn.containers_granted": 1.0}
        assert d["span_seconds"] == [1.0, 9.0]

    def test_render_mentions_each_section(self):
        bus = make_bus()
        summary = MetricsSummary().attach(bus, categories=("task",))
        bus.emit(sample_events()[1])
        text = summary.render()
        assert "task.phase" in text
        assert "map.read" in text

    def test_render_empty(self):
        assert MetricsSummary().render() == "(no telemetry events)"
