"""Unit tests for the telemetry bus: dispatch, gating, counters."""

import pytest

from repro.telemetry import (
    CATEGORIES,
    ContainerGranted,
    JobSubmitted,
    SimEventExecuted,
    TelemetryBus,
)


def make_bus(now=0.0):
    return TelemetryBus(clock=lambda: now)


class TestSubscription:
    def test_wants_nothing_by_default(self):
        bus = make_bus()
        for category in CATEGORIES:
            assert not bus.wants(category)
        assert not bus.sim_events_wanted

    def test_wants_subscribed_category_only(self):
        bus = make_bus()
        bus.subscribe(lambda e: None, categories=("yarn",))
        assert bus.wants("yarn")
        assert not bus.wants("tuner")

    def test_wildcard_wants_everything(self):
        bus = make_bus()
        bus.subscribe(lambda e: None)  # default: ("*",)
        for category in CATEGORIES:
            assert bus.wants(category)
        assert bus.sim_events_wanted

    def test_sim_flag_tracks_explicit_sim_subscription(self):
        bus = make_bus()
        bus.subscribe(lambda e: None, categories=("yarn",))
        assert not bus.sim_events_wanted
        bus.subscribe(lambda e: None, categories=("sim",))
        assert bus.sim_events_wanted

    def test_unknown_category_rejected(self):
        bus = make_bus()
        with pytest.raises(ValueError, match="unknown telemetry category"):
            bus.subscribe(lambda e: None, categories=("bogus",))


class TestDispatch:
    def test_emit_reaches_category_sinks_in_order(self):
        bus = make_bus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e)), categories=("yarn",))
        bus.subscribe(lambda e: seen.append(("b", e)), categories=("yarn",))
        ev = ContainerGranted(time=1.0, node_id=0, container_id=7)
        bus.emit(ev)
        assert seen == [("a", ev), ("b", ev)]

    def test_emit_skips_other_categories(self):
        bus = make_bus()
        seen = []
        bus.subscribe(seen.append, categories=("tuner",))
        bus.emit(ContainerGranted(time=1.0))
        assert seen == []

    def test_wildcard_after_category_sinks(self):
        bus = make_bus()
        seen = []
        bus.subscribe(lambda e: seen.append("cat"), categories=("job",))
        bus.subscribe(lambda e: seen.append("wild"))
        bus.emit(JobSubmitted(time=0.0, job_id="job_1"))
        assert seen == ["cat", "wild"]

    def test_sim_events_reach_wildcard(self):
        bus = make_bus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(SimEventExecuted(time=2.0, description="x"))
        assert len(seen) == 1


class TestClockAndCounters:
    def test_now_reads_the_clock(self):
        times = [3.5]
        bus = TelemetryBus(clock=lambda: times[0])
        assert bus.now == 3.5
        times[0] = 9.0
        assert bus.now == 9.0

    def test_counters_accumulate(self):
        bus = make_bus()
        bus.increment("yarn.containers_granted")
        bus.increment("yarn.containers_granted")
        bus.increment("faults.applied", 3.0)
        assert bus.counters == {
            "yarn.containers_granted": 2.0,
            "faults.applied": 3.0,
        }
