"""Crash safety of the JSONL writers: atomic save, tolerant replay.

``JsonlExporter.save`` stages through ``<path>.tmp`` and renames, so a
crash mid-write can never tear an existing log; ``replay_records``
reads append-mode files (the recovery journal) and drops a torn *final*
line while still rejecting interior corruption.  These are the
regression tests for both properties.
"""

import json
import os

import pytest

from repro.telemetry import JsonlExporter, TelemetryBus, replay_records
from repro.telemetry.events import JobSubmitted
from repro.testing import assert_no_output_leaks, leaked_temporaries


def exporter_with_events(n=5) -> JsonlExporter:
    bus = TelemetryBus(clock=lambda: 0.0)
    exporter = JsonlExporter().attach(bus, ("job",))
    for i in range(n):
        bus.emit(JobSubmitted(time=float(i), job_id=f"job_{i:04d}"))
    return exporter


class TestAtomicSave:
    def test_save_leaves_no_tmp_sibling(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        exporter_with_events().save(path)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        assert not leaked_temporaries(str(tmp_path))
        assert_no_output_leaks(str(tmp_path))

    def test_saved_bytes_match_dumps(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        exporter = exporter_with_events()
        exporter.save(path)
        with open(path) as fh:
            assert fh.read() == exporter.dumps()

    def test_failed_save_preserves_previous_log(self, tmp_path, monkeypatch):
        path = str(tmp_path / "trace.jsonl")
        exporter = exporter_with_events()
        exporter.save(path)
        before = open(path).read()

        # A crash mid-write: the replace step never runs.
        def boom(*args, **kwargs):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", boom)
        bigger = exporter_with_events(50)
        with pytest.raises(OSError):
            bigger.save(path)
        monkeypatch.undo()
        assert open(path).read() == before  # old log untouched
        assert not os.path.exists(path + ".tmp")  # staging cleaned up


class TestReplayRecords:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        exporter = exporter_with_events()
        exporter.save(path)
        assert replay_records(path) == exporter.records

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        exporter = exporter_with_events()
        exporter.save(path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-7])  # the crash ate the tail
        records = replay_records(path)
        assert records == exporter.records[:-1]

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        exporter_with_events().save(path)
        with open(path) as fh:
            lines = fh.read().splitlines()
        lines[1] = lines[1][:-4]  # torn line *before* the end
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            replay_records(path)

    def test_empty_and_blank_lines(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as fh:
            fh.write('{"a":1}\n\n{"b":2}\n')
        assert replay_records(path) == [{"a": 1}, {"b": 2}]
