"""End-to-end telemetry: traced runs are deterministic and passive."""

import json
import os

from repro.experiments.parallel import RunRequest, execute_request
from repro.experiments.trace import (
    TRACE_CHROME,
    TRACE_JSONL,
    TRACE_SUMMARY,
    run_traced_case,
)
from repro.telemetry import CATEGORIES

CASE = "wordcount-wikipedia"
BLOCKS = 4
REDUCERS = 2


def traced(seed=1, **kwargs):
    return run_traced_case(
        case_name=CASE, seed=seed, num_blocks=BLOCKS, num_reducers=REDUCERS, **kwargs
    )


class TestTracedRun:
    @staticmethod
    def pin_global_ids():
        # Job / container / request ids come from process-global
        # counters; two CLI runs each start fresh, so pin the counters
        # to mimic separate processes (the CI gate's actual setup).
        import itertools

        from repro.cluster import container
        from repro.mapreduce import jobspec
        from repro.yarn import records

        jobspec._job_ids = itertools.count(9000)
        container._container_ids = itertools.count(1_000_000)
        records._request_ids = itertools.count(1_000_000)

    def test_same_seed_runs_are_byte_identical(self):
        self.pin_global_ids()
        a = traced()
        self.pin_global_ids()
        b = traced()
        assert a.events.dumps() == b.events.dumps()
        assert a.digest() == b.digest()
        assert a.chrome.to_json() == b.chrome.to_json()

    def test_jsonl_is_schema_valid(self):
        run = traced()
        lines = run.events.dumps().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert isinstance(record["time"], (int, float))
            assert record["category"] in CATEGORIES
            assert isinstance(record["kind"], str) and record["kind"]

    def test_expected_event_mix(self):
        run = traced()
        kinds = {(r["category"], r["kind"]) for r in run.events.records}
        assert ("job", "job_submitted") in kinds
        assert ("job", "job_finished") in kinds
        assert ("task", "phase") in kinds
        assert ("task", "attempt") in kinds
        assert ("stats", "task_stats") in kinds
        assert ("yarn", "container_granted") in kinds
        assert ("yarn", "container_released") in kinds
        # The per-calendar-event firehose stays off by default.
        assert not any(cat == "sim" for cat, _ in kinds)

    def test_chrome_trace_parses_with_slices_per_node(self):
        run = traced()
        doc = json.loads(run.chrome.to_json())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {s["name"] for s in slices} >= {"map.read", "reduce.shuffle"}
        # Task spans land on real node tracks, never the cluster pid.
        assert all(s["pid"] >= 1 for s in slices if s["name"].startswith("map."))

    def test_observers_do_not_perturb_the_run(self):
        run = traced()
        request = RunRequest(
            case_name=CASE, seed=1, num_blocks=BLOCKS, num_reducers=REDUCERS
        )
        untraced = execute_request(request)
        assert run.job_time == untraced.job_time
        assert run.succeeded == untraced.succeeded

    def test_save_writes_all_artifacts(self, tmp_path):
        run = traced()
        paths = run.save(str(tmp_path / "out"))
        assert set(paths) == {TRACE_JSONL, TRACE_CHROME, TRACE_SUMMARY}
        for path in paths.values():
            assert os.path.exists(path) and os.path.getsize(path) > 0
        with open(paths[TRACE_JSONL]) as fh:
            assert fh.read() == run.events.dumps()

    def test_tuned_run_emits_tuner_events(self):
        run = traced(tuning="aggressive")
        kinds = {(r["category"], r["kind"]) for r in run.events.records}
        assert ("tuner", "wave_opened") in kinds
        assert run.summary.as_dict()["counters"].get("tuner.waves_opened", 0) >= 1
