"""Property-style tests over the workload profiles and datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import SimCluster
from repro.mapreduce.dataflow import JobDataflow
from repro.mapreduce.jobspec import JobSpec
from repro.workloads.datasets import teragen_dataset
from repro.workloads.suite import make_job_spec, table3_cases, terasort_case

GB = 1024**3


class TestProfileInvariants:
    @pytest.mark.parametrize("case", table3_cases(), ids=lambda c: c.name)
    def test_combiner_never_inflates(self, case):
        p = case.profile
        assert p.combiner_byte_ratio <= 1.0
        assert p.combiner_record_ratio <= 1.0

    @pytest.mark.parametrize("case", table3_cases(), ids=lambda c: c.name)
    def test_cpu_costs_nonnegative(self, case):
        p = case.profile
        assert p.map_cpu_per_mb >= 0
        assert p.reduce_cpu_per_mb >= 0
        assert p.map_cpu_fixed_sec >= 0

    @pytest.mark.parametrize("case", table3_cases(), ids=lambda c: c.name)
    def test_memory_footprints_fit_default_container(self, case):
        # Every Table-3 app must be runnable under the default 1 GB
        # containers (the paper's baseline runs them all).
        p = case.profile
        heap = 1024 * 0.8 * 1024**2
        assert p.map_fixed_mem_bytes + 100 * 1024**2 <= heap
        assert p.reduce_fixed_mem_bytes < heap

    def test_shuffle_intensity_ordering(self):
        """Table 3's classification: bigram shuffles more per input byte
        than word count, which shuffles more than text search."""
        by_name = {c.name: c for c in table3_cases()}
        for ds in ("wikipedia", "freebase"):
            bigram = by_name[f"bigram-{ds}"]
            wc = by_name[f"wordcount-{ds}"]
            grep = by_name[f"text-search-{ds}"]
            assert (
                bigram.expected_shuffle_bytes
                > wc.expected_shuffle_bytes
                > grep.expected_shuffle_bytes
            )


class TestDataflowConservation:
    @given(
        blocks=st.integers(1, 40),
        reducers=st.integers(1, 32),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_partitions_conserve_map_output(self, blocks, reducers, seed):
        sc = SimCluster(seed=0, start_monitors=False)
        case = terasort_case(max(1, blocks // 8) or 1)
        # Build a dataflow directly over an ad-hoc file.
        path = f"/prop-{blocks}-{reducers}-{seed}"
        f = sc.hdfs.create_file(path, blocks * sc.hdfs.block_size)
        spec = JobSpec(
            name="prop",
            workload=case.profile,
            input_path=path,
            num_reducers=reducers,
        )
        df = JobDataflow(spec, f, rng=np.random.default_rng(seed))
        for m in range(min(df.num_maps, 5)):
            out_bytes, _records = df.map_output(m)
            parts = df.partitions_for_map(m, out_bytes)
            assert parts.sum() == pytest.approx(out_bytes, rel=1e-9)

    def test_measured_job_conserves_shuffle(self):
        """End-to-end: bytes registered by maps == bytes fetched by reduces."""
        sc = SimCluster(seed=3, start_monitors=False)
        result = sc.run_job(make_job_spec(terasort_case(4.0), sc.hdfs))
        from repro.mapreduce.jobspec import TaskType

        map_out = sum(s.map_output_bytes for s in result.stats_of(TaskType.MAP))
        shuffled = sum(s.shuffled_bytes for s in result.stats_of(TaskType.REDUCE))
        assert shuffled == pytest.approx(map_out, rel=1e-6)


class TestDatasetScaling:
    @given(size=st.floats(0.5, 200.0))
    @settings(max_examples=30, deadline=None)
    def test_teragen_block_math(self, size):
        ds = teragen_dataset(size)
        assert ds.num_blocks >= 1
        assert ds.size_bytes == ds.num_blocks * ds.block_size

    def test_terasort_case_scaling_monotone(self):
        small = terasort_case(2.0)
        big = terasort_case(60.0)
        assert big.num_maps > small.num_maps
        assert big.num_reducers > small.num_reducers
