"""Tests for the benchmark suite: Table-3 calibration."""

import numpy as np
import pytest

from repro.experiments.harness import SimCluster
from repro.mapreduce.dataflow import JobDataflow
from repro.workloads.datasets import (
    bbp_dataset,
    freebase_dataset,
    teragen_dataset,
    wikipedia_dataset,
)
from repro.workloads.suite import JobType, case_by_name, make_job_spec, table3_cases, terasort_case

GB = 1024**3


class TestDatasets:
    def test_wikipedia_map_count(self):
        # Table 3: 676 maps on the Wikipedia jobs.
        assert wikipedia_dataset().num_blocks == 676

    def test_freebase_map_count(self):
        assert freebase_dataset().num_blocks == 752

    def test_wikipedia_size_close_to_paper(self):
        assert wikipedia_dataset().size_gb * 1.024**3 == pytest.approx(90.5, rel=0.02)

    def test_teragen_sizes(self):
        assert teragen_dataset(100.0).num_blocks == 800
        assert teragen_dataset(2.0).num_blocks == 16

    def test_teragen_validation(self):
        with pytest.raises(ValueError):
            teragen_dataset(0)

    def test_bbp_tiny_splits(self):
        ds = bbp_dataset(100)
        assert ds.num_blocks == 100
        assert ds.block_size == 1024**2

    def test_load_registers_once(self):
        sc = SimCluster(seed=0, start_monitors=False)
        ds = teragen_dataset(2.0)
        f1 = ds.load(sc.hdfs)
        f2 = ds.load(sc.hdfs)
        assert f1 is f2
        assert len(f1.blocks) == 16


class TestTable3:
    def test_ten_rows(self):
        assert len(table3_cases()) == 10

    def test_job_types_match_paper(self):
        types = {c.name: c.job_type for c in table3_cases()}
        assert types["bigram-wikipedia"] is JobType.SHUFFLE
        assert types["inverted-index-wikipedia"] is JobType.MAP
        assert types["wordcount-wikipedia"] is JobType.MAP
        assert types["text-search-wikipedia"] is JobType.COMPUTE
        assert types["bigram-freebase"] is JobType.SHUFFLE
        assert types["inverted-index-freebase"] is JobType.COMPUTE
        assert types["terasort"] is JobType.SHUFFLE
        assert types["bbp"] is JobType.COMPUTE

    def test_reducer_counts(self):
        for case in table3_cases():
            expected = 1 if case.name == "bbp" else 200
            assert case.num_reducers == expected, case.name

    @pytest.mark.parametrize("case", table3_cases(), ids=lambda c: c.name)
    def test_shuffle_volume_calibration(self, case):
        """Expected (analytic) shuffle volume within 5% of Table 3."""
        sc = SimCluster(seed=0, start_monitors=False)
        spec = make_job_spec(case, sc.hdfs)
        df = JobDataflow(spec, sc.hdfs.get(spec.input_path), rng=np.random.default_rng(0))
        assert df.expected_shuffle_bytes == pytest.approx(
            case.expected_shuffle_bytes, rel=0.05
        ), case.name

    @pytest.mark.parametrize(
        "case",
        [c for c in table3_cases() if c.expected_output_bytes > 0],
        ids=lambda c: c.name,
    )
    def test_output_volume_calibration(self, case):
        sc = SimCluster(seed=0, start_monitors=False)
        spec = make_job_spec(case, sc.hdfs)
        df = JobDataflow(spec, sc.hdfs.get(spec.input_path), rng=np.random.default_rng(0))
        assert df.expected_output_bytes == pytest.approx(
            case.expected_output_bytes, rel=0.06
        ), case.name

    def test_case_by_name(self):
        assert case_by_name("terasort").name == "terasort"
        with pytest.raises(KeyError):
            case_by_name("nope")


class TestTerasortCase:
    def test_reducers_quarter_of_maps(self):
        case = terasort_case(2.0)
        assert case.num_reducers == case.num_maps // 4

    def test_explicit_reducers(self):
        assert terasort_case(2.0, num_reducers=7).num_reducers == 7

    def test_paper_jobsize_examples(self):
        # Section 8.4: "4 reducers and 16 mappers for a job with a size
        # of 2 GB".
        case = terasort_case(2.0)
        assert case.num_maps == 16
        assert case.num_reducers == 4


class TestProfiles:
    def test_all_profiles_construct(self):
        for case in table3_cases():
            assert case.profile.map_output_ratio >= 0

    def test_combiner_apps(self):
        combiners = {c.name: c.profile.has_combiner for c in table3_cases()}
        assert combiners["wordcount-wikipedia"]
        assert combiners["bigram-wikipedia"]
        assert not combiners["terasort"]
        assert not combiners["inverted-index-wikipedia"]

    def test_bbp_is_compute_bound(self):
        case = case_by_name("bbp")
        assert case.profile.map_cpu_fixed_sec > 100
        assert case.profile.map_cpu_parallelism > 1

    def test_wordcount_dataset_validation(self):
        from repro.workloads.wordcount import wordcount_profile

        with pytest.raises(ValueError):
            wordcount_profile("unknown")
