#!/usr/bin/env python
"""Export a tuned configuration as mapred-site.xml and inspect the run.

Shows the adoption path out of the reproduction: tune a job, write the
recommendation in the XML format Hadoop actually consumes, and dump a
task timeline (CSV + terminal swimlanes) to see *why* it is faster.

Run:  python examples/export_tuned_config.py
"""

import numpy as np

from repro.core.hadoop_xml import to_hadoop_xml
from repro.core.tuner import OnlineTuner, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.experiments.trace import swimlanes, to_csv
from repro.workloads.suite import make_job_spec, terasort_case


def main() -> None:
    case = terasort_case(10.0)

    cluster = SimCluster(seed=1)
    spec = make_job_spec(case, cluster.hdfs)
    tuner = OnlineTuner(TuningStrategy.CONSERVATIVE, rng=np.random.default_rng(1))
    app_master = tuner.submit(cluster, spec)
    result = cluster.sim.run_until_complete(app_master.completion)
    config = tuner.finalize_job(spec.job_id, result)

    print(f"job finished in {result.duration:.1f} s; exporting artifacts...\n")

    xml = to_hadoop_xml(config, description=f"MRONLINE recommendation for {case.name}")
    with open("tuned-mapred-site.xml", "w") as fh:
        fh.write(xml)
    print("wrote tuned-mapred-site.xml:")
    print("\n".join(xml.splitlines()[:8]) + "\n  ...\n")

    with open("task-timeline.csv", "w") as fh:
        fh.write(to_csv(result))
    print(f"wrote task-timeline.csv ({len(result.task_stats)} attempts)\n")

    print("timeline (m = map, r = reduce, B = both):")
    print(swimlanes(result, width=90, max_lanes=10))


if __name__ == "__main__":
    main()
