#!/usr/bin/env python
"""Expedited test runs: find a near-optimal configuration in ONE run.

The traditional workflow profiles an application over many test runs.
MRONLINE's aggressive strategy instead evaluates a whole batch of
configurations per *wave of tasks* inside a single run: the gray-box
hill climber (Algorithm 1) samples configurations with weighted Latin
hypercubes, the Section-6 rules tighten the sampling bounds from the
monitored statistics, and the best validated configuration comes out
at the end -- stored in the knowledge base for future runs.

Run:  python examples/expedited_test_run.py
"""

import numpy as np

from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.mapreduce.jobspec import TaskType
from repro.workloads.suite import case_by_name, make_job_spec


def main() -> None:
    seed = 1
    case = case_by_name("wordcount-wikipedia")

    # --- baseline: the default YARN configuration ---------------------
    baseline_cluster = SimCluster(seed=seed)
    baseline = baseline_cluster.run_job(make_job_spec(case, baseline_cluster.hdfs))
    print(f"default configuration run : {baseline.duration:7.1f} s")

    # --- the single aggressive tuning run ------------------------------
    tuning_cluster = SimCluster(seed=seed)
    spec = make_job_spec(case, tuning_cluster.hdfs)
    tuner = OnlineTuner(
        TuningStrategy.AGGRESSIVE,
        settings=TunerSettings(),
        rng=np.random.default_rng(seed),
    )
    app_master = tuner.submit(tuning_cluster, spec)
    tuning_run = tuning_cluster.sim.run_until_complete(app_master.completion)
    print(
        f"aggressive tuning run     : {tuning_run.duration:7.1f} s "
        "(slower on purpose: it holds task waves to evaluate configurations)"
    )

    searched = {s.wave for s in tuning_run.stats_of(TaskType.MAP)}
    print(f"map waves searched        : {len(searched)}")
    for line in tuner.rule_log(spec.job_id)[:6]:
        print(f"  gray-box rule: {line}")

    best = tuner.finalize_job(spec.job_id, tuning_run)

    # --- production run with the recommended configuration -------------
    prod_cluster = SimCluster(seed=seed)
    prod = prod_cluster.run_job(
        make_job_spec(case, prod_cluster.hdfs, base_config=best)
    )
    gain = (baseline.duration - prod.duration) / baseline.duration
    print(f"run with tuned config     : {prod.duration:7.1f} s  ({100 * gain:+.1f}%)")

    # --- the knowledge base persists the outcome -----------------------
    print(f"\nknowledge base now holds {len(tuner.knowledge_base)} entry:")
    print(tuner.knowledge_base.to_json())


if __name__ == "__main__":
    main()
