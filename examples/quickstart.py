#!/usr/bin/env python
"""Quickstart: run one MapReduce job on the simulated YARN cluster.

Builds the paper's 19-node cluster, loads a 10 GB Teragen dataset,
runs Terasort twice -- once with the stock YARN defaults and once
co-executed with MRONLINE's conservative online tuner -- and prints
what changed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.tuner import OnlineTuner, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.mapreduce.counters import Counter
from repro.workloads.suite import make_job_spec, terasort_case


def run_default(seed: int):
    cluster = SimCluster(seed=seed)
    spec = make_job_spec(terasort_case(10.0), cluster.hdfs)
    return cluster.run_job(spec)


def run_tuned(seed: int):
    cluster = SimCluster(seed=seed)
    spec = make_job_spec(terasort_case(10.0), cluster.hdfs)
    tuner = OnlineTuner(TuningStrategy.CONSERVATIVE, rng=np.random.default_rng(seed))
    app_master = tuner.submit(cluster, spec)
    result = cluster.sim.run_until_complete(app_master.completion)
    return result, tuner.recommended_config(spec.job_id), tuner.rule_log(spec.job_id)


def main() -> None:
    seed = 1
    default = run_default(seed)
    tuned, config, rule_log = run_tuned(seed)

    print("Terasort, 10 GB, 19-node simulated cluster")
    print(f"  default YARN configuration : {default.duration:8.1f} s")
    print(f"  with MRONLINE (conservative): {tuned.duration:8.1f} s")
    gain = (default.duration - tuned.duration) / default.duration
    print(f"  improvement                 : {100 * gain:8.1f} %")
    print()
    print("Spilled records (fewer is better):")
    print(f"  default : {default.counters[Counter.SPILLED_RECORDS]:,.0f}")
    print(f"  MRONLINE: {tuned.counters[Counter.SPILLED_RECORDS]:,.0f}")
    print()
    print("What the tuner changed while the job ran:")
    for line in rule_log:
        print(f"  - {line}")
    print()
    print("Configuration recommended for future runs of this job:")
    for name, value in sorted(config.as_dict().items()):
        print(f"  {name} = {value:g}")


if __name__ == "__main__":
    main()
