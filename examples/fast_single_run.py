#!/usr/bin/env python
"""Fast single run: improve a job you will only ever run once.

The conservative strategy never delays scheduling.  The first wave of
tasks runs the defaults while the monitor collects statistics; from
then on the Section-6 rules steer the configuration of every future
task (and hot-swap category-3 parameters into running ones).  Useful
exactly when offline tuning is not worth it.

This example runs the whole Table-3 application suite and prints the
per-application improvement -- the data behind Figures 10-12.

Run:  python examples/fast_single_run.py [--small]
"""

import sys

import numpy as np

from repro.core.tuner import OnlineTuner, TuningStrategy
from repro.experiments.harness import SimCluster
from repro.workloads.suite import make_job_spec, table3_cases, terasort_case


def compare(case, seed: int):
    default_cluster = SimCluster(seed=seed)
    default = default_cluster.run_job(make_job_spec(case, default_cluster.hdfs))

    tuned_cluster = SimCluster(seed=seed)
    spec = make_job_spec(case, tuned_cluster.hdfs)
    tuner = OnlineTuner(TuningStrategy.CONSERVATIVE, rng=np.random.default_rng(seed))
    app_master = tuner.submit(tuned_cluster, spec)
    tuned = tuned_cluster.sim.run_until_complete(app_master.completion)
    return default.duration, tuned.duration


def main() -> None:
    small = "--small" in sys.argv
    cases = [terasort_case(6.0)] if small else table3_cases()
    print(f"{'application':28s} {'default':>9s} {'MRONLINE':>9s} {'gain':>7s}")
    for case in cases:
        d, t = compare(case, seed=1)
        gain = (d - t) / d
        print(f"{case.name:28s} {d:8.1f}s {t:8.1f}s {100 * gain:+6.1f}%")


if __name__ == "__main__":
    main()
