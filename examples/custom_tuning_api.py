#!/usr/bin/env python
"""Using the dynamic configurator's Table-1 API directly.

MRONLINE's per-task configuration framework is usable by *other*
tuning logic too (the paper: "The APIs also allow other tuning
algorithms ... to easily tune the job parameters").  This example
drives the API by hand: it queries the configurable parameters, pins a
custom configuration on a few specific tasks, tightens the job-level
configuration mid-run, and hot-swaps a category-3 parameter into
running tasks.

Run:  python examples/custom_tuning_api.py
"""

from repro.core import parameters as P
from repro.core.configurator import DynamicConfigurator
from repro.experiments.harness import SimCluster
from repro.mapreduce.jobspec import TaskType
from repro.workloads.suite import make_job_spec, terasort_case


def main() -> None:
    cluster = SimCluster(seed=1)
    spec = make_job_spec(terasort_case(6.0), cluster.hdfs)

    configurator = DynamicConfigurator()
    configurator.register_job(spec)

    # --- Table 1: inspect what is configurable -------------------------
    params = configurator.get_configurable_job_parameters(spec.job_id)
    print(f"{len(params)} configurable parameters, e.g. {params[:3]}")

    # --- pin a bespoke configuration on three specific map tasks -------
    for index in range(3):
        configurator.set_task_parameters(
            spec.job_id,
            {P.IO_SORT_MB: 300, P.SORT_SPILL_PERCENT: 0.99},
            task_id=spec.map_task_id(index),
        )

    # --- steer every other task at the job level -----------------------
    configurator.set_job_parameters(
        spec.job_id, {P.SHUFFLE_PARALLELCOPIES: 20, P.REDUCE_INPUT_BUFFER_PERCENT: 0.6}
    )

    # --- hot-swap a category-3 parameter once the job is underway ------
    def mid_run_update() -> None:
        applied = configurator.set_task_parameters(
            spec.job_id, {P.SORT_SPILL_PERCENT: 0.95}
        )
        print(f"t={cluster.sim.now:6.1f}s hot-swapped spill.percent on {applied} params")

    cluster.sim.call_at(30.0, mid_run_update)

    result = cluster.run_job(spec, config_provider=configurator)
    print(f"job finished in {result.duration:.1f} s (succeeded={result.succeeded})")

    pinned = [
        s for s in result.stats_of(TaskType.MAP) if s.config[P.IO_SORT_MB] == 300
    ]
    print(f"{len(pinned)} map tasks ran the bespoke per-task configuration")


if __name__ == "__main__":
    main()
