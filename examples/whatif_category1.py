#!/usr/bin/env python
"""What-if tuning of category-1 parameters (reducer count, slowstart).

The online tuner cannot touch parameters that are fixed at job launch
(Section 2.2); the paper defers those to simulation tools.  Because
this reproduction's substrate *is* a simulator, the
:class:`CategoryOneAdvisor` closes that loop: it replays the job under
candidate reducer counts and slowstart values and recommends the best,
optionally on top of the configuration the online tuner found.

Run:  python examples/whatif_category1.py
"""

from repro.core.whatif import CategoryOneAdvisor, default_candidates
from repro.workloads.datasets import teragen_dataset
from repro.workloads.terasort import terasort_profile


def main() -> None:
    dataset = teragen_dataset(20.0)
    profile = terasort_profile()
    advisor = CategoryOneAdvisor(seed=1)
    candidates = default_candidates(dataset.num_blocks)

    print(f"what-if analysis: Terasort {dataset.size_gb:.0f} GiB, "
          f"{dataset.num_blocks} maps, {len(candidates)} candidates\n")
    advice = advisor.advise(profile, dataset, candidates=candidates)

    print(f"{'reducers':>9s} {'slowstart':>10s} {'predicted':>11s}")
    for outcome in sorted(
        advice.evaluations, key=lambda e: (e.candidate.num_reducers, e.candidate.slowstart)
    ):
        marker = "  <== best" if outcome.candidate == advice.best else ""
        print(
            f"{outcome.candidate.num_reducers:9d} "
            f"{outcome.candidate.slowstart:10.2f} "
            f"{outcome.predicted_duration:10.1f}s{marker}"
        )
    print(
        f"\nrecommendation: {advice.best.num_reducers} reducers, "
        f"slowstart {advice.best.slowstart}"
    )


if __name__ == "__main__":
    main()
