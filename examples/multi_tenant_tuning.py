#!/usr/bin/env python
"""Multi-tenant tuning: Terasort and BBP sharing one cluster.

Reproduces the Section-8.5 scenario: a shuffle-heavy job (Terasort,
60 GB) and a compute-bound job (BBP, digits of pi) co-run under the
fair scheduler.  MRONLINE tunes both in a shared session, then the
tuned co-run is compared against the default co-run: container sizes
shrink to fit (more containers per node), BBP's mappers get the CPU
they can actually use, and Terasort stops triple-writing its map
output.

Run:  python examples/multi_tenant_tuning.py
"""

from repro.experiments.multitenant import ROLES, run_multitenant_experiment


def main() -> None:
    default, tuned = run_multitenant_experiment(seed=1)

    print("Job execution time (fair-share co-run):")
    for label, d, t in (
        ("Terasort", default.terasort_time, tuned.terasort_time),
        ("BBP", default.bbp_time, tuned.bbp_time),
    ):
        gain = (d - t) / d
        print(f"  {label:9s} default {d:7.1f} s   MRONLINE {t:7.1f} s   ({100 * gain:+.1f}%)")

    print("\nAverage container memory utilization:")
    for role in ROLES:
        print(
            f"  {role:11s} default {100 * default.utilization.memory[role]:5.1f}%"
            f"   MRONLINE {100 * tuned.utilization.memory[role]:5.1f}%"
        )

    print("\nAverage container CPU utilization:")
    for role in ROLES:
        print(
            f"  {role:11s} default {100 * default.utilization.cpu[role]:5.1f}%"
            f"   MRONLINE {100 * tuned.utilization.cpu[role]:5.1f}%"
        )

    print(
        f"\nTerasort map spill records: {default.terasort_map_spills / 1e9:.2f}e9 ->"
        f" {tuned.terasort_map_spills / 1e9:.2f}e9"
    )


if __name__ == "__main__":
    main()
